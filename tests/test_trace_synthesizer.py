"""Unit tests for the trace synthesizer.

These check the *generative invariants*; the Section III distributional
shapes are asserted in test_analysis_figures.py.
"""

import pytest

from repro.trace.synthesizer import TraceConfig, TraceSynthesizer, synthesize_trace


class TestTraceConfig:
    def test_defaults_valid(self):
        TraceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_users=0),
            dict(num_channels=0),
            dict(num_videos=0),
            dict(num_users=5, num_channels=10),   # more channels than users
            dict(num_channels=50, num_videos=10),  # more channels than videos
            dict(num_categories=0),
            dict(primary_category_share=1.5),
            dict(in_interest_subscription_prob=-0.1),
            dict(max_interests=0),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TraceConfig(**kwargs)

    def test_paper_crawl_scale_counts(self):
        config = TraceConfig.paper_crawl_scale()
        assert config.num_users == 20310
        assert config.num_videos == 261110

    def test_table1_scale_counts(self):
        config = TraceConfig.table1_scale()
        assert config.num_users == 10000
        assert config.num_channels == 545
        assert config.num_videos == 10121


class TestSynthesis:
    def test_exact_entity_counts(self, tiny_dataset):
        assert tiny_dataset.num_users == 150
        assert tiny_dataset.num_channels == 30
        assert tiny_dataset.num_videos == 900
        assert tiny_dataset.num_categories == 6

    def test_validates_cleanly(self, tiny_dataset):
        tiny_dataset.validate()

    def test_deterministic_for_seed(self):
        config = TraceConfig(num_users=100, num_channels=20, num_videos=400, seed=5)
        a = TraceSynthesizer(config).synthesize()
        b = TraceSynthesizer(config).synthesize()
        assert a.to_json() == b.to_json()

    def test_different_seeds_differ(self):
        base = dict(num_users=100, num_channels=20, num_videos=400)
        a = synthesize_trace(TraceConfig(seed=1, **base))
        b = synthesize_trace(TraceConfig(seed=2, **base))
        assert a.to_json() != b.to_json()

    def test_every_channel_has_a_video(self, tiny_dataset):
        assert all(c.num_videos >= 1 for c in tiny_dataset.iter_channels())

    def test_every_channel_has_distinct_owner(self, tiny_dataset):
        owners = [c.owner_user_id for c in tiny_dataset.iter_channels()]
        assert len(owners) == len(set(owners))

    def test_owner_backlink_on_user(self, tiny_dataset):
        for channel in tiny_dataset.iter_channels():
            owner = tiny_dataset.users[channel.owner_user_id]
            assert owner.owned_channel_id == channel.channel_id

    def test_video_lengths_within_bounds(self, tiny_dataset):
        config = TraceConfig()
        for video in tiny_dataset.iter_videos():
            assert config.video_length_min <= video.length_seconds <= config.video_length_max

    def test_upload_days_within_horizon(self, tiny_dataset):
        for video in tiny_dataset.iter_videos():
            assert 0 <= video.upload_day < tiny_dataset.crawl_day

    def test_views_positive(self, tiny_dataset):
        assert all(v.views >= 1 for v in tiny_dataset.iter_videos())

    def test_channel_category_mix_matches_videos(self, tiny_dataset):
        for channel in tiny_dataset.iter_channels():
            recount = {}
            for video_id in channel.video_ids:
                cat = tiny_dataset.videos[video_id].category_id
                recount[cat] = recount.get(cat, 0) + 1
            assert recount == channel.category_mix

    def test_primary_category_dominates(self, tiny_dataset):
        # The primary category should hold the plurality of most
        # channels' videos (Fig 11: channels are focused).
        dominated = 0
        for channel in tiny_dataset.iter_channels():
            primary_count = channel.category_mix.get(channel.category_id, 0)
            if primary_count >= max(channel.category_mix.values()):
                dominated += 1
        assert dominated >= 0.8 * tiny_dataset.num_channels

    def test_interests_derived_from_favorites(self, tiny_dataset):
        for user in tiny_dataset.iter_users():
            derived = {
                tiny_dataset.videos[v].category_id for v in user.favorite_video_ids
            }
            assert user.interest_ids == derived

    def test_every_user_has_a_favorite(self, tiny_dataset):
        assert all(u.favorite_video_ids for u in tiny_dataset.iter_users())

    def test_interest_count_capped(self, tiny_dataset):
        config = TraceConfig()
        assert all(
            u.num_interests <= config.max_interests for u in tiny_dataset.iter_users()
        )

    def test_subscriptions_mirrored_on_channels(self, tiny_dataset):
        for user in tiny_dataset.iter_users():
            for channel_id in user.subscribed_channel_ids:
                assert user.user_id in tiny_dataset.channels[channel_id].subscriber_ids
