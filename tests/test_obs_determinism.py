"""Trace determinism: a trace artifact is a pure function of its spec.

The heart of the observability contract (DESIGN.md §8): same spec +
seed ⇒ byte-identical JSONL, whether the run executes in-process or
through the process-pool path.  These tests use the smoke-scale config
so they stay in tier-1 budget.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.obs.export import parse_jsonl_bytes, run_profiled


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    )


@pytest.fixture(scope="module")
def serial_payload(spec):
    return run_profiled(spec, jobs=1).jsonl


def test_repeat_runs_are_byte_identical(spec, serial_payload):
    assert run_profiled(spec, jobs=1).jsonl == serial_payload


def test_pool_path_matches_serial(spec, serial_payload):
    assert run_profiled(spec, jobs=4).jsonl == serial_payload


def test_different_seed_different_trace(spec, serial_payload):
    other = run_profiled(spec.with_seed(spec.seed + 1), jobs=1).jsonl
    assert other != serial_payload


def test_trace_contains_expected_families(serial_payload):
    rows = parse_jsonl_bytes(serial_payload)
    names = {row.get("name") for row in rows if "name" in row}
    # flood instrumentation with TTL semantics
    assert "flood.search" in names
    assert "flood.hop" in names
    assert "flood.ttl_exhausted" in names
    # transfers must be attributed to a source
    sources = {
        row["attrs"]["source"]
        for row in rows
        if row.get("name") == "transfer.chunks"
    }
    assert sources  # at least one transfer happened
    assert sources <= {"server", "peer", "cache", "prefetch_peer", "prefetch_server"}
    # churn + prefetch + session lifecycles
    assert {"churn.join", "churn.leave", "session.begin", "session.end"} <= names
    assert "prefetch.lookup" in names
    assert "playback.report" in names


def test_timestamps_are_sim_clock_ordered(serial_payload):
    rows = parse_jsonl_bytes(serial_payload)
    times = [row["t"] for row in rows if "t" in row]
    assert times == sorted(times)
    assert times[0] == 0.0


def test_spans_all_closed(serial_payload):
    rows = parse_jsonl_bytes(serial_payload)
    begun = {row["span"] for row in rows if row.get("kind") == "span_begin"}
    ended = {row["span"] for row in rows if row.get("kind") == "span_end"}
    assert begun == ended
