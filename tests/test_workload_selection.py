"""Unit tests for the 75/15/10 selection model."""

import random

import pytest

from repro.workload.selection import SelectionPolicy, VideoSelector


@pytest.fixture()
def selector(tiny_dataset):
    return VideoSelector(tiny_dataset, random.Random(0))


class TestSelectionPolicy:
    def test_defaults_sum_correctly(self):
        policy = SelectionPolicy()
        assert policy.p_other_category == pytest.approx(0.10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(p_same_channel=1.1),
            dict(p_same_channel=0.9, p_same_category=0.2),
            dict(p_subscribed_move=-0.1),
            dict(channel_popularity_exponent=-1),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SelectionPolicy(**kwargs)


class TestSessionStart:
    def test_start_prefers_subscriptions(self, selector, tiny_dataset):
        user = next(
            u for u in tiny_dataset.iter_users() if u.subscribed_channel_ids
        )
        hits = 0
        for _ in range(50):
            selector.start_session(user.user_id)
            if selector.current_channel(user.user_id) in u_subs(user):
                hits += 1
        assert hits == 50  # session start always lands in a subscription

    def test_start_without_subscriptions_still_works(self, tiny_dataset, rng):
        # Clone the dataset and strip one user's subscriptions so the
        # no-subscription fallback path is exercised deterministically.
        from repro.trace.dataset import TraceDataset

        clone = TraceDataset.from_json(tiny_dataset.to_json())
        user = next(iter(clone.users.values()))
        for channel_id in list(user.subscribed_channel_ids):
            clone.channels[channel_id].subscriber_ids.discard(user.user_id)
        user.subscribed_channel_ids.clear()
        selector = VideoSelector(clone, rng)
        selector.start_session(user.user_id)
        assert selector.current_channel(user.user_id) in clone.channels

    def test_current_channel_requires_session(self, selector):
        with pytest.raises(KeyError):
            selector.current_channel(0)


def u_subs(user):
    return user.subscribed_channel_ids


class TestNextVideo:
    def test_videos_belong_to_dataset(self, selector, tiny_dataset):
        selector.start_session(0)
        for _ in range(100):
            video = selector.next_video(0)
            assert video in tiny_dataset.videos

    def test_same_channel_majority(self, tiny_dataset):
        # With p_same_channel = 1.0, every video is in the session channel.
        selector = VideoSelector(
            tiny_dataset,
            random.Random(1),
            policy=SelectionPolicy(p_same_channel=1.0, p_same_category=0.0),
        )
        selector.start_session(0)
        channel = selector.current_channel(0)
        for _ in range(30):
            video = selector.next_video(0)
            assert tiny_dataset.channel_of_video(video) == channel

    def test_same_category_move(self, tiny_dataset):
        selector = VideoSelector(
            tiny_dataset,
            random.Random(1),
            policy=SelectionPolicy(p_same_channel=0.0, p_same_category=1.0),
        )
        selector.start_session(0)
        before = selector.current_channel(0)
        category = tiny_dataset.category_of_channel(before)
        video = selector.next_video(0)
        after = selector.current_channel(0)
        assert tiny_dataset.category_of_channel(after) == category
        assert tiny_dataset.channel_of_video(video) == after

    def test_other_category_move(self, tiny_dataset):
        selector = VideoSelector(
            tiny_dataset,
            random.Random(1),
            policy=SelectionPolicy(p_same_channel=0.0, p_same_category=0.0),
        )
        selector.start_session(0)
        before_cat = tiny_dataset.category_of_channel(selector.current_channel(0))
        moved = 0
        for _ in range(20):
            selector.next_video(0)
            after_cat = tiny_dataset.category_of_channel(selector.current_channel(0))
            if after_cat != before_cat:
                moved += 1
            before_cat = after_cat
        assert moved >= 15  # different-category moves dominate

    def test_empirical_branch_fractions(self, tiny_dataset):
        selector = VideoSelector(tiny_dataset, random.Random(7))
        selector.start_session(0)
        same = 0
        total = 2000
        for _ in range(total):
            before = selector.current_channel(0)
            video = selector.next_video(0)
            if tiny_dataset.channel_of_video(video) == before:
                same += 1
        # ~75% same-channel picks (channel moves can land back on the
        # same channel occasionally, so allow a band).
        assert 0.70 < same / total < 0.85

    def test_popular_videos_preferred_within_channel(self, tiny_dataset):
        selector = VideoSelector(
            tiny_dataset,
            random.Random(3),
            policy=SelectionPolicy(p_same_channel=1.0, p_same_category=0.0),
        )
        selector.start_session(0)
        # Pin the session to the largest channel so the frequency test
        # has enough distinct videos to discriminate.
        channel = max(
            tiny_dataset.channels,
            key=lambda c: tiny_dataset.channels[c].num_videos,
        )
        selector._current_channel[0] = channel
        videos = tiny_dataset.videos_of_channel(channel)
        top = max(videos, key=tiny_dataset.video_views)
        draws = [selector.next_video(0) for _ in range(500)]
        top_share = draws.count(top) / len(draws)
        uniform_share = 1.0 / len(videos)
        assert top_share > 2 * uniform_share

    def test_determinism(self, tiny_dataset):
        a = VideoSelector(tiny_dataset, random.Random(5))
        b = VideoSelector(tiny_dataset, random.Random(5))
        a.start_session(0)
        b.start_session(0)
        assert [a.next_video(0) for _ in range(20)] == [
            b.next_video(0) for _ in range(20)
        ]
