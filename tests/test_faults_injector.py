"""Unit tests for the seeded fault injector and its stream isolation."""

import pytest

from repro.faults.injector import NULL_INJECTOR, FaultInjector, NullFaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.rng import RngStreams


def _injector(**kwargs):
    defaults = dict(crash_rate_per_hour=6.0, query_loss_prob=0.2, slow_peer_prob=0.3)
    defaults.update(kwargs)
    return FaultInjector(FaultPlan(**defaults), RngStreams(11))


class TestNullInjector:
    def test_null_injector_is_falsy(self):
        assert not NULL_INJECTOR
        assert not NullFaultInjector()
        assert NULL_INJECTOR.plan is None

    def test_real_injector_is_truthy(self):
        assert _injector()

    def test_zero_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), RngStreams(1))


class TestDraws:
    def test_crash_delay_none_when_rate_zero(self):
        injector = _injector(crash_rate_per_hour=0.0)
        assert injector.crash_delay() is None

    def test_crash_delays_positive_with_plausible_mean(self):
        injector = _injector(crash_rate_per_hour=4.0)
        draws = [injector.crash_delay() for _ in range(2000)]
        assert all(delay > 0 for delay in draws)
        # exponential with mean 900s; the sample mean should be close
        assert 800 < sum(draws) / len(draws) < 1000

    def test_query_loss_frequency_tracks_probability(self):
        injector = _injector(query_loss_prob=0.2)
        losses = sum(injector.query_lost() for _ in range(5000))
        assert 0.15 < losses / 5000 < 0.25

    def test_query_loss_never_fires_at_zero_probability(self):
        injector = _injector(query_loss_prob=0.0)
        assert not any(injector.query_lost() for _ in range(100))

    def test_peer_rate_degrades_to_factor_or_passes_through(self):
        injector = _injector(slow_peer_prob=0.5, slow_peer_factor=0.25)
        rates = {injector.peer_rate(1000.0) for _ in range(200)}
        assert rates == {1000.0, 250.0}

    def test_brownout_is_a_pure_function_of_the_clock(self):
        injector = _injector(brownout_period_s=100.0, brownout_duty=0.25)
        assert injector.in_brownout(0.0)
        assert injector.in_brownout(24.9)
        assert not injector.in_brownout(25.0)
        assert not injector.in_brownout(99.0)
        assert injector.in_brownout(100.0)  # next period

    def test_server_rate_halves_inside_brownout(self):
        injector = _injector(
            brownout_period_s=100.0, brownout_duty=0.25, brownout_factor=0.5
        )
        assert injector.server_rate(1000.0, now=10.0) == 500.0
        assert injector.server_rate(1000.0, now=60.0) == 1000.0


class TestStreamIsolation:
    def test_injector_streams_never_perturb_existing_streams(self):
        """The zero-plan byte-identity guarantee, at the RNG layer."""
        plain = RngStreams(2014)
        baseline = [plain.stream(name).random() for name in
                    ("workload", "churn", "latency", "protocol")]

        with_faults = RngStreams(2014)
        injector = FaultInjector(FaultPlan.demo(), with_faults)
        injector.crash_delay()
        injector.query_lost()
        injector.peer_rate(1000.0)
        observed = [with_faults.stream(name).random() for name in
                    ("workload", "churn", "latency", "protocol")]
        assert observed == baseline

    def test_draws_are_deterministic_given_seed(self):
        a = FaultInjector(FaultPlan.demo(), RngStreams(5))
        b = FaultInjector(FaultPlan.demo(), RngStreams(5))
        assert [a.crash_delay() for _ in range(10)] == [
            b.crash_delay() for _ in range(10)
        ]
        assert [a.query_lost() for _ in range(10)] == [
            b.query_lost() for _ in range(10)
        ]
