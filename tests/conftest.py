"""Shared fixtures for the test suite.

The expensive artifacts (synthesized datasets, full experiment runs)
are session-scoped so the suite stays fast; tests must treat them as
read-only.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.config import SimulationConfig
from repro.net.server import CentralServer
from repro.trace.synthesizer import TraceConfig, TraceSynthesizer


TINY_TRACE = TraceConfig(
    num_users=150,
    num_channels=30,
    num_videos=900,
    num_categories=6,
    seed=99,
)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but structurally complete dataset (read-only)."""
    return TraceSynthesizer(TINY_TRACE).synthesize()


@pytest.fixture(scope="session")
def default_dataset():
    """The default-config dataset used by the analysis tests (read-only)."""
    return TraceSynthesizer(TraceConfig(seed=1234)).synthesize()


@pytest.fixture()
def rng():
    return random.Random(42)


@pytest.fixture()
def server(tiny_dataset):
    """A fresh central server over the tiny dataset."""
    return CentralServer(tiny_dataset, capacity_bps=50e6, rng=random.Random(7))


@pytest.fixture()
def smoke_config():
    return SimulationConfig.smoke_scale(seed=77)

