"""Unit tests for the BFS crawler."""

import random

import pytest

from repro.trace.crawler import BfsCrawler
from repro.trace.dataset import TraceDataset


class TestBfsCrawler:
    def test_empty_dataset_rejected(self):
        crawler = BfsCrawler(TraceDataset(), random.Random(0))
        with pytest.raises(ValueError):
            crawler.crawl()

    def test_unknown_start_user_rejected(self, tiny_dataset):
        crawler = BfsCrawler(tiny_dataset, random.Random(0))
        with pytest.raises(KeyError):
            crawler.crawl(start_user_id=10 ** 9)

    def test_sample_validates(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=0)
        sample.validate()

    def test_sample_is_subset(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=0)
        assert set(sample.users) <= set(tiny_dataset.users)
        assert set(sample.channels) <= set(tiny_dataset.channels)
        assert set(sample.videos) <= set(tiny_dataset.videos)

    def test_start_user_included(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=3)
        assert 3 in sample.users

    def test_channels_belong_to_visited_owners(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=0)
        for channel in sample.channels.values():
            assert channel.owner_user_id in sample.users

    def test_videos_follow_channels(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=0)
        for channel in sample.channels.values():
            for video_id in channel.video_ids:
                assert video_id in sample.videos

    def test_max_users_truncates(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(
            start_user_id=0, max_users=10
        )
        assert sample.num_users <= 10

    def test_subscription_edges_clipped_both_sides(self, tiny_dataset):
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=0)
        for user in sample.users.values():
            for channel_id in user.subscribed_channel_ids:
                assert channel_id in sample.channels
                assert user.user_id in sample.channels[channel_id].subscriber_ids

    def test_deterministic_from_same_start(self, tiny_dataset):
        a = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=1)
        b = BfsCrawler(tiny_dataset, random.Random(99)).crawl(start_user_id=1)
        # Start user fixed: the crawl is graph-determined, rng unused.
        assert set(a.users) == set(b.users)

    def test_crawl_reaches_subscription_owners(self, tiny_dataset):
        start = next(
            u.user_id for u in tiny_dataset.iter_users() if u.subscribed_channel_ids
        )
        sample = BfsCrawler(tiny_dataset, random.Random(0)).crawl(start_user_id=start)
        first_channel = next(iter(tiny_dataset.users[start].subscribed_channel_ids))
        owner = tiny_dataset.channels[first_channel].owner_user_id
        assert owner in sample.users
