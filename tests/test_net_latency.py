"""Unit tests for the latency models."""

import random

import pytest

from repro.net.latency import (
    SERVER_NODE_ID,
    PlanarLatencyModel,
    UniformLatencyModel,
    WanLatencyModel,
)


class TestUniformLatencyModel:
    def test_within_bounds(self):
        model = UniformLatencyModel(random.Random(1), low=0.01, high=0.05)
        for _ in range(200):
            assert 0.01 <= model.sample(1, 2) <= 0.05

    def test_self_latency_zero(self):
        model = UniformLatencyModel(random.Random(1))
        assert model.sample(3, 3) == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(random.Random(1), low=0.1, high=0.05)

    def test_rtt_is_two_samples(self):
        model = UniformLatencyModel(random.Random(1), low=0.02, high=0.02)
        assert model.rtt(1, 2) == pytest.approx(0.04)


class TestPlanarLatencyModel:
    def test_self_latency_zero(self):
        model = PlanarLatencyModel(random.Random(1))
        assert model.sample(1, 1) == 0.0

    def test_positive_latency(self):
        model = PlanarLatencyModel(random.Random(1))
        assert all(model.sample(i, i + 1) > 0 for i in range(50))

    def test_coordinates_stable(self):
        model = PlanarLatencyModel(random.Random(1))
        assert model.distance(1, 2) == model.distance(1, 2)

    def test_distance_symmetric(self):
        model = PlanarLatencyModel(random.Random(1))
        assert model.distance(4, 9) == pytest.approx(model.distance(9, 4))

    def test_server_at_centre(self):
        model = PlanarLatencyModel(random.Random(1))
        # Server-to-anyone distance bounded by half the square diagonal.
        assert model.distance(SERVER_NODE_ID, 1) <= (0.5 ** 2 + 0.5 ** 2) ** 0.5 + 1e-9

    def test_latency_scales_with_distance(self):
        # Zero jitter isolates the propagation term.
        model = PlanarLatencyModel(random.Random(1), jitter_sigma=0.0)
        pairs = [(i, i + 100) for i in range(50)]
        ds = [model.distance(a, b) for a, b in pairs]
        ls = [model.sample(a, b) for a, b in pairs]
        far = max(range(50), key=lambda i: ds[i])
        near = min(range(50), key=lambda i: ds[i])
        assert ls[far] > ls[near]

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            PlanarLatencyModel(random.Random(1), base=-0.1)

    def test_zero_floor_is_draw_identical(self):
        # jitter_floor=0 is the exact legacy model: lognormal samples
        # are strictly positive, so the clamp never fires and the draw
        # sequence is untouched.
        plain = PlanarLatencyModel(random.Random(7))
        floored = PlanarLatencyModel(random.Random(7), jitter_floor=0.0)
        assert [plain.sample(i, i + 1) for i in range(100)] == [
            floored.sample(i, i + 1) for i in range(100)
        ]
        assert plain.min_one_way_s() == 0.0

    def test_positive_floor_bounds_every_sample(self):
        model = PlanarLatencyModel(random.Random(7), jitter_floor=0.25)
        bound = model.min_one_way_s()
        assert bound == pytest.approx(0.010 * 0.25)
        assert all(model.sample(i, i + 1) >= bound for i in range(300))

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            PlanarLatencyModel(random.Random(1), jitter_floor=1.5)
        with pytest.raises(ValueError):
            PlanarLatencyModel(random.Random(1), jitter_floor=-0.1)


class TestWanLatencyModel:
    def test_self_latency_zero(self):
        model = WanLatencyModel(random.Random(1))
        assert model.sample(2, 2) == 0.0

    def test_sites_assigned_stably(self):
        model = WanLatencyModel(random.Random(1))
        assert model.site_of(5) == model.site_of(5)

    def test_server_at_site_zero(self):
        model = WanLatencyModel(random.Random(1))
        assert model.site_of(SERVER_NODE_ID) == 0

    def test_wan_latencies_heavier_than_lan(self):
        rng = random.Random(1)
        wan = WanLatencyModel(rng, congestion_prob=0.0, jitter_sigma=0.0)
        samples = [wan.sample(i, i + 1000) for i in range(300)]
        # Cross-continent pairs dominate: mean one-way latency is high.
        assert sum(samples) / len(samples) > 0.05

    def test_congestion_inflates_tail(self):
        base = WanLatencyModel(random.Random(1), congestion_prob=0.0)
        congested = WanLatencyModel(
            random.Random(1), congestion_prob=0.5, congestion_factor=10.0
        )
        base_max = max(base.sample(1, 2) for _ in range(200))
        congested_max = max(congested.sample(1, 2) for _ in range(200))
        assert congested_max > base_max

    def test_invalid_congestion_prob_rejected(self):
        with pytest.raises(ValueError):
            WanLatencyModel(random.Random(1), congestion_prob=1.5)

    def test_invalid_congestion_factor_rejected(self):
        with pytest.raises(ValueError):
            WanLatencyModel(random.Random(1), congestion_factor=0.5)

    def test_zero_floor_is_draw_identical(self):
        plain = WanLatencyModel(random.Random(9))
        floored = WanLatencyModel(random.Random(9), jitter_floor=0.0)
        assert [plain.sample(i, i + 500) for i in range(100)] == [
            floored.sample(i, i + 500) for i in range(100)
        ]
        assert plain.min_one_way_s() == 0.0

    def test_positive_floor_bounds_every_sample(self):
        model = WanLatencyModel(random.Random(9), jitter_floor=0.25)
        bound = model.min_one_way_s()
        assert bound > 0
        # Congestion only inflates, so the floor survives the tail.
        assert all(model.sample(i, i + 500) >= bound for i in range(300))
