"""The shard determinism gate: ``shards=1`` byte-identical to ``shards=N``.

This is the sharded counterpart of PR 2's jobs-parity tests: the shard
count is an execution detail, never an identity, so metrics rows, trace
bytes and time-series digests must not move when it changes.  The edge
cases of the sharding design ride along -- a single-shard coordinator
equals the legacy engine, zero lookahead serializes without deadlock,
and crash/repair plans survive window barriers unchanged.
"""

import pytest

from repro.experiments.config import (
    ENVIRONMENT_FACTORIES,
    Environment,
    SimulationConfig,
)
from repro.experiments.registry import resolve_params
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.faults.plan import FaultPlan
from repro.net.latency import UniformLatencyModel
from repro.obs.timeseries import run_with_timeseries
from repro.shard.scheduler import ShardedScheduler
from repro.sim.engine import EventScheduler
from repro.trace.synthesizer import TraceConfig

MICRO = SimulationConfig(
    num_nodes=40,
    trace=TraceConfig(num_users=40, num_channels=10, num_videos=200,
                      num_categories=4, seed=10),
    sessions_per_user=2,
    videos_per_session=4,
    mean_off_time_s=60.0,
    seed=10,
)


def micro_spec(protocol, shards=1, environment="peersim"):
    return ExperimentSpec(
        protocol=protocol,
        config=MICRO,
        environment=environment,
        params=resolve_params(protocol, MICRO),
        shards=shards,
    )


@pytest.fixture()
def uniform_lan():
    """A registered environment whose min cross-shard latency is positive.

    peersim/planetlab use lognormal jitter (unbounded below), so their
    conservative lookahead is 0 and sharded runs serialize.  This
    environment gives the windowed path real lookahead windows.
    """
    name = "uniform-lan-test"
    ENVIRONMENT_FACTORIES[name] = lambda: Environment(
        name=name,
        latency_factory=lambda rng: UniformLatencyModel(rng, low=0.02, high=0.08),
    )
    try:
        yield name
    finally:
        ENVIRONMENT_FACTORIES.pop(name, None)


class TestByteParity:
    @pytest.mark.parametrize("protocol", ["socialtube", "nettube", "pavod"])
    def test_metrics_rows_identical_across_shard_counts(self, protocol):
        base = run_spec(micro_spec(protocol, shards=1))
        sharded = run_spec(micro_spec(protocol, shards=4))
        assert base.render_rows() == sharded.render_rows()
        assert base.events_processed == sharded.events_processed
        assert base.server_requests == sharded.server_requests

    def test_timeseries_digest_identical_across_shard_counts(self):
        runs = [
            run_with_timeseries(micro_spec("socialtube", shards=shards))
            for shards in (1, 4)
        ]
        assert runs[0].table.digest() == runs[1].table.digest()
        assert runs[0].jsonl == runs[1].jsonl  # whole trace, byte-for-byte

    def test_shard_report_attribution(self):
        result = run_spec(micro_spec("socialtube", shards=4))
        report = result.shard_report
        assert report is not None
        assert report.num_shards == 4
        assert sum(report.events_by_shard) == result.events_processed
        assert report.lookahead_violations == 0
        # The report is attribution, not identity: it never leaks into
        # the parity surface.
        assert "shards" not in "\n".join(result.render_rows())


class TestSingleShardEqualsLegacyEngine:
    def _workload(self, sched):
        order = []

        def ping(i):
            order.append((sched.now, "ping", i))
            if i < 5:
                sched.schedule(1.5, ping, i + 1)

        def cancel_target():  # pragma: no cover - must never fire
            order.append((sched.now, "cancelled", -1))

        sched.schedule(1.0, ping, 0)
        doomed = sched.schedule(2.0, cancel_target)
        doomed.cancel()
        timer = sched.schedule(3.0, order.append, (3.0, "timer", 0))
        timer.reschedule(7.0)
        sched.run_until(60.0)
        return order, sched.now, sched.events_processed

    def test_event_order_clock_and_counters_match(self):
        legacy = self._workload(EventScheduler())
        sharded = self._workload(
            ShardedScheduler(1, lambda fn, args: 0, lookahead_s=0.0)
        )
        assert legacy == sharded


class TestZeroLookaheadSerializes:
    def test_peersim_lookahead_is_zero_and_run_completes(self):
        # Planar latency has unbounded-below jitter, so the conservative
        # lookahead is 0: every event time is its own barrier.  The run
        # must still complete (no deadlock) with full parity.
        result = run_spec(micro_spec("socialtube", shards=4))
        report = result.shard_report
        assert report.lookahead_s == 0.0
        assert report.windows > 0
        expected = MICRO.num_nodes * MICRO.sessions_per_user * MICRO.videos_per_session
        assert result.metrics.num_requests == expected


class TestPositiveLookaheadWindows:
    def test_uniform_latency_yields_real_windows(self, uniform_lan):
        result = run_spec(micro_spec("socialtube", shards=4, environment=uniform_lan))
        report = result.shard_report
        assert report.lookahead_s == pytest.approx(0.02)
        # One barrier per crossed window; lifecycle events are minutes
        # apart, so the count never exceeds the event count.
        assert 0 < report.windows <= result.events_processed
        assert report.lookahead_violations == 0

    def test_parity_holds_under_windowed_sync(self, uniform_lan):
        base = run_spec(micro_spec("nettube", shards=1, environment=uniform_lan))
        sharded = run_spec(micro_spec("nettube", shards=4, environment=uniform_lan))
        assert base.render_rows() == sharded.render_rows()


class TestCrashRepairAcrossBarriers:
    def test_faulted_run_is_byte_identical_across_shard_counts(self, uniform_lan):
        # Crash/repair pairs are minutes apart while lookahead windows
        # are 20 ms wide, so every repair straddles thousands of window
        # barriers; routing them through the owning shard must not move
        # a single byte.
        runs = []
        for shards in (1, 4):
            spec = micro_spec(
                "socialtube", shards=shards, environment=uniform_lan
            ).with_faults(FaultPlan.demo())
            runs.append(run_with_timeseries(spec))
        base, sharded = runs
        assert base.result.render_rows() == sharded.result.render_rows()
        assert base.table.digest() == sharded.table.digest()
        assert base.result.metrics.crashes > 0  # the plan actually fired
        report = sharded.result.shard_report
        assert report.windows > 1  # repairs crossed real barriers
        assert report.lookahead_violations == 0
