"""Unit tests for the Fig 10 channel-clustering analysis."""

import pytest

from repro.analysis.clustering import (
    ChannelGraph,
    build_channel_graph,
    shared_subscriber_histogram,
    top_channels_per_category,
)


class TestTopChannels:
    def test_per_category_counts(self, default_dataset):
        picks = top_channels_per_category(default_dataset, per_category=3)
        per_cat = {}
        for channel_id in picks:
            cat = default_dataset.category_of_channel(channel_id)
            per_cat[cat] = per_cat.get(cat, 0) + 1
        assert all(count <= 3 for count in per_cat.values())

    def test_picks_are_most_subscribed(self, default_dataset):
        picks = set(top_channels_per_category(default_dataset, per_category=1))
        for category in default_dataset.categories.values():
            if not category.channel_ids:
                continue
            best = max(
                category.channel_ids,
                key=lambda c: default_dataset.channels[c].num_subscribers,
            )
            assert best in picks

    def test_invalid_per_category_rejected(self, default_dataset):
        with pytest.raises(ValueError):
            top_channels_per_category(default_dataset, per_category=0)


class TestBuildChannelGraph:
    def test_invalid_threshold_rejected(self, default_dataset):
        with pytest.raises(ValueError):
            build_channel_graph(default_dataset, threshold=0)

    def test_edges_meet_threshold(self, default_dataset):
        graph = build_channel_graph(default_dataset, threshold=15, per_category=5)
        for pair, shared in graph.edges.items():
            a, b = tuple(pair)
            actual = len(
                default_dataset.channels[a].subscriber_ids
                & default_dataset.channels[b].subscriber_ids
            )
            assert actual == shared >= 15

    def test_higher_threshold_fewer_edges(self, default_dataset):
        low = build_channel_graph(default_dataset, threshold=5, per_category=5)
        high = build_channel_graph(default_dataset, threshold=50, per_category=5)
        assert high.num_edges <= low.num_edges

    def test_interest_clustering_beats_random_baseline(self, default_dataset):
        # The O4 claim behind Fig 10: channels cluster by interest.
        graph = build_channel_graph(default_dataset, threshold=15, per_category=5)
        assert graph.num_edges > 0
        random_baseline = 1.0 / default_dataset.num_categories
        assert graph.intra_category_edge_fraction() > 2.5 * random_baseline

    def test_neighbors(self, default_dataset):
        graph = build_channel_graph(default_dataset, threshold=15, per_category=5)
        some_pair = next(iter(graph.edges))
        a, b = tuple(some_pair)
        assert b in graph.neighbors(a)
        assert a in graph.neighbors(b)


class TestGraphMetrics:
    def _triangle_graph(self):
        graph = ChannelGraph(
            nodes=[1, 2, 3, 4],
            category_of={1: 0, 2: 0, 3: 1, 4: 1},
        )
        graph.edges[frozenset((1, 2))] = 10  # same category
        graph.edges[frozenset((3, 4))] = 10  # same category
        graph.edges[frozenset((2, 3))] = 10  # cross category
        return graph

    def test_intra_category_fraction(self):
        assert self._triangle_graph().intra_category_edge_fraction() == pytest.approx(
            2 / 3
        )

    def test_empty_graph_fraction_zero(self):
        assert ChannelGraph().intra_category_edge_fraction() == 0.0

    def test_connected_components(self):
        graph = self._triangle_graph()
        components = graph.connected_components()
        assert len(components) == 1
        assert components[0] == {1, 2, 3, 4}

    def test_components_split_when_edge_removed(self):
        graph = self._triangle_graph()
        del graph.edges[frozenset((2, 3))]
        components = sorted(graph.connected_components(), key=min)
        assert components == [{1, 2}, {3, 4}]

    def test_component_purity(self):
        graph = self._triangle_graph()
        del graph.edges[frozenset((2, 3))]
        assert graph.component_purity() == pytest.approx(1.0)

    def test_histogram_counts_pairs(self, default_dataset):
        histogram = shared_subscriber_histogram(default_dataset, per_category=3)
        picks = len(top_channels_per_category(default_dataset, per_category=3))
        assert sum(count for _shared, count in histogram) == picks * (picks - 1) // 2
