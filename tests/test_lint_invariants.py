"""Runtime overlay-invariant checker and the periodic in-sim hook."""

import random

import pytest

from repro.core.structure import HierarchicalStructure
from repro.lint.invariants import (
    OverlayInvariantError,
    check_link_table,
    check_overlay,
    install_invariant_hook,
)
from repro.net.server import CentralServer
from repro.overlay.links import LinkTable
from repro.sim.engine import EventScheduler


@pytest.fixture()
def structure(tiny_dataset):
    server = CentralServer(tiny_dataset, capacity_bps=50e6, rng=random.Random(3))
    return HierarchicalStructure(
        tiny_dataset,
        server,
        random.Random(4),
        inner_link_limit=5,
        inter_link_limit=10,
        bootstrap_inner_links=3,
    )


def _always_alive(_node_id):
    return True


def _populated(structure, count=12, channel=0):
    for node_id in range(1, count + 1):
        structure.enter_channel(node_id, channel, _always_alive)
    return structure


def kinds_of(violations):
    return sorted({v.kind for v in violations})


class TestCheckLinkTable:
    def test_clean_table(self):
        table = LinkTable(capacity=3)
        table.connect(1, 2)
        table.connect(1, 3)
        assert check_link_table(table, "inner") == []

    def test_over_capacity_link_set_detected(self):
        # Force a LinkSet beyond its capacity (no public API allows
        # this; the checker guards against exactly such corruption).
        table = LinkTable(capacity=2)
        table.connect(1, 2)
        table.connect(1, 3)
        for extra in (4, 5):
            table.links_of(1)._links[extra] = None
            table.links_of(extra)._links[1] = None
        violations = check_link_table(table, "inner")
        assert kinds_of(violations) == ["over-capacity"]
        assert violations[0].node_id == 1
        assert "limit of 2" in violations[0].detail

    def test_tighter_external_capacity_applies(self):
        table = LinkTable(capacity=5)
        table.connect(1, 2)
        table.connect(1, 3)
        violations = check_link_table(table, "inner", capacity=1)
        assert kinds_of(violations) == ["over-capacity"]

    def test_asymmetric_link_detected(self):
        table = LinkTable(capacity=3)
        table.links_of(1)._links[2] = None  # one-directional edge
        violations = check_link_table(table, "inter")
        assert kinds_of(violations) == ["asymmetric-link"]
        assert violations[0].level == "inter"

    def test_self_link_detected(self):
        table = LinkTable(capacity=3)
        table.links_of(7)._links[7] = None
        violations = check_link_table(table, "inner")
        assert kinds_of(violations) == ["self-link"]


class TestCheckOverlay:
    def test_populated_overlay_is_clean(self, structure):
        _populated(structure)
        assert check_overlay(structure) == []

    def test_clean_after_churn(self, structure, tiny_dataset):
        _populated(structure)
        structure.leave(3)
        structure.leave(7)
        for node_id in (1, 2, 4, 5):
            structure.maintain(
                node_id, lambda n: structure.channel_of.get(n) is not None
            )
        assert check_overlay(structure) == []

    def test_dangling_neighbor_detected(self, structure):
        _populated(structure)
        # Simulate an abrupt departure that skipped link teardown.
        structure.channel_of[2] = None
        violations = check_overlay(structure)
        assert "dangling-neighbor" in kinds_of(violations)
        assert "departed-node-with-links" in kinds_of(violations)

    def test_over_capacity_inner_detected(self, structure):
        _populated(structure)
        links = structure.inner.links_of(1)
        for extra in range(900, 900 + structure.inner_link_limit):
            links._links[extra] = None
            structure.inner.links_of(extra)._links[1] = None
            structure.channel_of[extra] = 0
        violations = check_overlay(structure)
        assert "over-capacity" in kinds_of(violations)

    def test_structure_check_invariants_method(self, structure):
        _populated(structure)
        assert structure.check_invariants() == []
        structure.assert_invariants()  # should not raise

    def test_structure_assert_invariants_raises(self, structure):
        _populated(structure)
        structure.inner.links_of(1)._links[1] = None  # self-link
        with pytest.raises(OverlayInvariantError) as excinfo:
            structure.assert_invariants()
        assert "self-link" in str(excinfo.value)


class TestPeriodicHook:
    def test_hook_runs_every_period(self, structure):
        _populated(structure)
        sched = EventScheduler()
        hook = install_invariant_hook(sched, structure, period_s=100.0)
        sched.run_until(350.0)
        assert hook.checks_run == 3

    def test_hook_raises_on_violation(self, structure):
        _populated(structure)
        sched = EventScheduler()
        install_invariant_hook(sched, structure, period_s=50.0)
        structure.inner.links_of(1)._links[1] = None
        with pytest.raises(OverlayInvariantError):
            sched.run_until(60.0)

    def test_hook_reports_via_callback(self, structure):
        _populated(structure)
        sched = EventScheduler()
        seen = []
        install_invariant_hook(
            sched, structure, period_s=50.0, on_violation=seen.append
        )
        structure.inner.links_of(1)._links[1] = None
        sched.run_until(120.0)
        assert len(seen) == 2  # still rescheduled after recording
        # The injected self-link also pushes node 1 past N_l.
        assert "self-link" in kinds_of(seen[0])

    def test_hook_cancel_stops_checks(self, structure):
        _populated(structure)
        sched = EventScheduler()
        hook = install_invariant_hook(sched, structure, period_s=50.0)
        sched.run_until(60.0)
        hook.cancel()
        sched.run_until(500.0)
        assert hook.checks_run == 1
        assert not hook.active

    def test_nonpositive_period_rejected(self, structure):
        with pytest.raises(ValueError):
            install_invariant_hook(EventScheduler(), structure, period_s=0.0)
