"""Unit tests for the metrics collectors."""

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.net.message import ChunkSource


def _collector():
    return MetricsCollector(protocol="Test", environment="unit")


class TestRecording:
    def test_empty_summary_rejected(self):
        with pytest.raises(RuntimeError):
            _collector().summarize()

    def test_single_request_summary(self):
        collector = _collector()
        collector.record_request(
            user_id=1, startup_delay_s=0.5, from_server=False, from_cache=False,
            hops=2, peers_contacted=5, prefetch_hit=False,
        )
        collector.record_chunks(1, ChunkSource.PEER, 20)
        metrics = collector.summarize()
        assert metrics.num_requests == 1
        assert metrics.startup_delay_ms_mean == pytest.approx(500.0)
        assert metrics.peer_bandwidth_p50 == pytest.approx(1.0)

    def test_negative_chunks_rejected(self):
        with pytest.raises(ValueError):
            _collector().record_chunks(1, ChunkSource.PEER, -1)

    def test_peer_transfer_failures_by_user(self):
        collector = _collector()
        assert collector.peer_transfer_failures_by_user() == {}
        for user_id in (3, 1, 3, 3, 7):
            collector.record_peer_transfer_failure(user_id)
        by_user = collector.peer_transfer_failures_by_user()
        assert by_user == {1: 1, 3: 3, 7: 1}
        assert sum(by_user.values()) == collector.peer_transfer_failures

    def test_peer_transfer_failures_snapshot_is_detached(self):
        collector = _collector()
        collector.record_peer_transfer_failure(5)
        snapshot = collector.peer_transfer_failures_by_user()
        snapshot[5] = 99
        assert collector.peer_transfer_failures_by_user() == {5: 1}

    def test_fractions(self):
        collector = _collector()
        for from_server, from_cache, prefetch in (
            (True, False, False),
            (False, True, False),
            (False, False, True),
            (False, False, False),
        ):
            collector.record_request(
                user_id=1, startup_delay_s=0.1, from_server=from_server,
                from_cache=from_cache, hops=1, peers_contacted=1,
                prefetch_hit=prefetch,
            )
        metrics_in = collector
        assert metrics_in.server_fallbacks == 1
        assert metrics_in.cache_hits == 1
        metrics = collector.summarize()
        assert metrics.server_fallback_fraction == pytest.approx(0.25)
        assert metrics.cache_hit_fraction == pytest.approx(0.25)
        assert metrics.prefetch_hit_fraction == pytest.approx(0.25)


class TestPeerBandwidth:
    def test_per_node_fraction(self):
        collector = _collector()
        collector.record_chunks(1, ChunkSource.PEER, 15)
        collector.record_chunks(1, ChunkSource.SERVER, 5)
        assert collector.node_peer_bandwidth() == [pytest.approx(0.75)]

    def test_cache_chunks_excluded(self):
        collector = _collector()
        collector.record_chunks(1, ChunkSource.PEER, 10)
        collector.record_chunks(1, ChunkSource.CACHE, 1000)
        assert collector.node_peer_bandwidth() == [pytest.approx(1.0)]

    def test_prefetch_sources_attributed(self):
        collector = _collector()
        collector.record_chunks(1, ChunkSource.PREFETCH_PEER, 1)
        collector.record_chunks(1, ChunkSource.PREFETCH_SERVER, 1)
        assert collector.node_peer_bandwidth() == [pytest.approx(0.5)]

    def test_node_with_only_cache_skipped(self):
        collector = _collector()
        collector.record_chunks(1, ChunkSource.CACHE, 5)
        assert collector.node_peer_bandwidth() == []

    def test_percentiles_across_nodes(self):
        collector = _collector()
        collector.record_request(
            user_id=0, startup_delay_s=0.0, from_server=False, from_cache=False,
            hops=0, peers_contacted=0, prefetch_hit=False,
        )
        for node, peer_chunks in enumerate((0, 10, 20)):
            collector.record_chunks(node, ChunkSource.PEER, peer_chunks)
            collector.record_chunks(node, ChunkSource.SERVER, 20 - peer_chunks)
        metrics = collector.summarize()
        assert metrics.peer_bandwidth_p50 == pytest.approx(0.5)
        assert metrics.peer_bandwidth_p1 == pytest.approx(0.01, abs=0.02)
        assert metrics.peer_bandwidth_p99 >= 0.98


class TestOverhead:
    def test_overhead_series(self):
        collector = _collector()
        collector.record_request(
            user_id=0, startup_delay_s=0.0, from_server=False, from_cache=False,
            hops=0, peers_contacted=0, prefetch_hit=False,
        )
        collector.record_chunks(0, ChunkSource.PEER, 1)
        collector.record_overhead(1, 1, 4)
        collector.record_overhead(2, 1, 6)
        collector.record_overhead(1, 2, 10)
        metrics = collector.summarize()
        assert metrics.overhead_by_video_index[1] == pytest.approx(5.0)
        assert metrics.overhead_by_video_index[2] == pytest.approx(10.0)
        assert metrics.overhead_series() == [(1, 5.0), (2, 10.0)]

    def test_render_rows(self):
        collector = _collector()
        collector.record_request(
            user_id=0, startup_delay_s=0.25, from_server=True, from_cache=False,
            hops=2, peers_contacted=3, prefetch_hit=False,
        )
        collector.record_chunks(0, ChunkSource.SERVER, 20)
        rows = collector.summarize().render_rows()
        assert any("startup delay" in row for row in rows)
        assert any("peer bandwidth" in row for row in rows)
