"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventScheduler, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventScheduler().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert EventScheduler(start_time=5.0).now == 5.0

    def test_schedule_returns_pending_event(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        assert event.pending
        assert event.time == 1.0

    def test_schedule_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sched = EventScheduler(start_time=10.0)
        with pytest.raises(SimulationError):
            sched.schedule_at(9.0, lambda: None)

    def test_schedule_zero_delay_allowed(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(0.0, fired.append, 1)
        sched.run()
        assert fired == [1]

    def test_callback_receives_args(self):
        sched = EventScheduler()
        got = []
        sched.schedule(1.0, lambda a, b: got.append((a, b)), "x", 2)
        sched.run()
        assert got == [("x", 2)]


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(3.0, order.append, 3)
        sched.schedule(1.0, order.append, 1)
        sched.schedule(2.0, order.append, 2)
        sched.run()
        assert order == [1, 2, 3]

    def test_ties_fire_fifo(self):
        sched = EventScheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, order.append, i)
        sched.run()
        assert order == list(range(10))

    def test_ties_stay_fifo_across_cancellations_and_compaction(self):
        # Compaction rebuilds the heap; surviving simultaneous events
        # must still fire in their original scheduling order.
        sched = EventScheduler()
        order = []
        events = [sched.schedule(1.0, order.append, i) for i in range(20)]
        for i in range(12):  # more than half dead -> triggers compaction
            events[i].cancel()
        assert sched.compactions >= 1
        sched.run()
        assert order == list(range(12, 20))

    def test_ties_fifo_interleaved_with_later_times(self):
        sched = EventScheduler()
        order = []
        sched.schedule(5.0, order.append, "late-a")
        sched.schedule(1.0, order.append, "tie-1")
        sched.schedule(5.0, order.append, "late-b")
        sched.schedule(1.0, order.append, "tie-2")
        sched.run()
        assert order == ["tie-1", "tie-2", "late-a", "late-b"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [2.5]

    def test_nested_scheduling_during_event(self):
        sched = EventScheduler()
        order = []

        def outer():
            order.append("outer")
            sched.schedule(1.0, lambda: order.append("inner"))

        sched.schedule(1.0, outer)
        sched.run()
        assert order == ["outer", "inner"]
        assert sched.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, fired.append, 1)
        event.cancel()
        sched.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        event = Event(1.0, lambda: None, ())
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_cancelled_events_skipped_in_pending_count(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert sched.pending_count() == 1
        assert keep.pending

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        first = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        first.cancel()
        assert sched.peek_time() == 2.0

    def test_peek_time_pops_cancelled_entries_lazily(self):
        sched = EventScheduler()
        doomed = [sched.schedule(float(i), lambda: None) for i in range(1, 4)]
        sched.schedule(10.0, lambda: None)
        for event in doomed:
            event.cancel()
        # Compaction (triggered at >50% dead weight) plus peek's lazy
        # pops must leave only the live entry at the heap head.
        assert sched.peek_time() == 10.0
        assert len(sched._heap) == 1

    def test_peek_time_empty(self):
        assert EventScheduler().peek_time() is None

    def test_cancel_after_fire_is_noop(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        sched.run()
        event.cancel()
        assert event.fired and not event.cancelled
        assert sched.pending_count() == 0


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run_until(3.0)
        assert fired == [1]
        assert sched.now == 3.0

    def test_run_until_leaves_future_events_pending(self):
        sched = EventScheduler()
        sched.schedule(5.0, lambda: None)
        sched.run_until(3.0)
        assert sched.pending_count() == 1

    def test_run_until_can_continue(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run_until(3.0)
        sched.run_until(10.0)
        assert fired == [1, 5]

    def test_run_until_past_horizon_rejected(self):
        sched = EventScheduler()
        sched.run_until(5.0)
        with pytest.raises(SimulationError):
            sched.run_until(3.0)

    def test_event_at_horizon_fires(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, fired.append, 3)
        sched.run_until(3.0)
        assert fired == [3]

    def test_stop_interrupts_run(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append(1)
            sched.stop()

        sched.schedule(1.0, first)
        sched.schedule(2.0, fired.append, 2)
        sched.run()
        assert fired == [1]
        # The second event is still pending and can run later.
        sched.run()
        assert fired == [1, 2]

    def test_stop_mid_run_until_leaves_clock_at_last_event(self):
        # A stopped run must NOT advance the clock to the horizon:
        # resuming later has to continue from the interruption point.
        sched = EventScheduler()
        fired = []

        def interrupt():
            fired.append(sched.now)
            sched.stop()

        sched.schedule(3.0, interrupt)
        sched.schedule(7.0, fired.append, 7.0)
        sched.run_until(100.0)
        assert fired == [3.0]
        assert sched.now == 3.0
        # Resuming picks up the remaining event and then reaches the horizon.
        sched.run_until(100.0)
        assert fired == [3.0, 7.0]
        assert sched.now == 100.0


class TestHeapCompaction:
    def test_mass_cancellation_shrinks_heap(self):
        sched = EventScheduler()
        events = [sched.schedule(float(i + 1), lambda: None) for i in range(100)]
        for event in events[:60]:
            event.cancel()
        # Lazy cancellation must not let dead entries accumulate: after
        # cancelling 60 of 100, at most half the heap may be dead weight.
        assert sched.pending_count() == 40
        assert len(sched._heap) <= 80
        assert sched.compactions >= 1

    def test_compaction_preserves_event_order(self):
        sched = EventScheduler()
        order = []
        keep = []
        for i in range(30):
            event = sched.schedule(float(30 - i), order.append, 30 - i)
            if i % 3 != 0:
                keep.append(30 - i)
            else:
                event.cancel()
        sched.run()
        assert order == sorted(keep)

    def test_pending_count_is_live_counter(self):
        sched = EventScheduler()
        assert sched.pending_count() == 0
        events = [sched.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sched.pending_count() == 10
        events[0].cancel()
        events[0].cancel()  # idempotent: must not double-decrement
        assert sched.pending_count() == 9
        sched.step()  # fires the event at t=2.0
        assert sched.pending_count() == 8
        sched.run()
        assert sched.pending_count() == 0

    def test_counter_consistent_under_churn(self):
        # Repeated schedule/cancel cycles (probe rescheduling pattern):
        # the counter must track the brute-force count exactly and the
        # heap must stay bounded by twice the live events.
        sched = EventScheduler()
        live = []
        for round_number in range(50):
            for _ in range(10):
                live.append(sched.schedule(float(round_number + 1), lambda: None))
            for _ in range(8):
                live.pop(0).cancel()
        brute_force = sum(
            1
            for _t, _s, e, gen in sched._heap
            if e.pending and gen == e._generation
        )
        assert sched.pending_count() == brute_force == len(live)
        assert len(sched._heap) <= 2 * sched.pending_count() + 1


class TestAccounting:
    def test_events_processed_counter(self):
        sched = EventScheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        sched.run()
        assert sched.events_processed == 5

    def test_step_returns_false_when_drained(self):
        sched = EventScheduler()
        assert sched.step() is False

    def test_step_fires_single_event(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(2.0, fired.append, 2)
        assert sched.step() is True
        assert fired == [1]


class TestCancelReporting:
    def test_cancel_reports_whether_it_acted(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is False  # idempotent repeat did nothing

    def test_cancel_after_fire_reports_false(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        sched.run()
        assert event.cancel() is False


class TestReschedule:
    def test_moves_a_pending_event(self):
        sched = EventScheduler()
        order = []
        event = sched.schedule(1.0, order.append, "moved")
        sched.schedule(3.0, order.append, "fixed")
        event.reschedule(5.0)
        sched.run()
        assert order == ["fixed", "moved"]
        assert event.time == 5.0

    def test_returns_self_for_chaining(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        assert event.reschedule(2.0) is event

    def test_fires_exactly_once_after_move(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, fired.append, 1)
        event.reschedule(2.0)
        sched.run()
        assert fired == [1]

    def test_replacement_args(self):
        sched = EventScheduler()
        got = []
        event = sched.schedule(1.0, got.append, "old")
        event.reschedule(1.0, "new")
        sched.run()
        assert got == ["new"]

    def test_revives_a_cancelled_event(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, fired.append, 1)
        assert event.cancel() is True
        event.reschedule(2.0)
        assert event.pending
        sched.run()
        assert fired == [1]

    def test_rearms_a_fired_event(self):
        # The periodic-timer pattern: one handle for the hook's life.
        sched = EventScheduler()
        times = []

        def tick():
            times.append(sched.now)
            if len(times) < 3:
                event.reschedule(10.0)

        event = sched.schedule(10.0, tick)
        sched.run()
        assert times == [10.0, 20.0, 30.0]

    def test_keeps_pending_count_at_one(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        for _ in range(100):
            event.reschedule(1.0)
        assert sched.pending_count() == 1
        # Compaction sheds the orphaned entries as they accumulate.
        assert len(sched._heap) <= 2 * sched.pending_count() + 1

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            event.reschedule(-0.5)
        assert event.pending  # the failed call left the arming intact

    def test_unscheduled_event_rejected(self):
        event = Event(1.0, lambda: None, ())
        with pytest.raises(SimulationError):
            event.reschedule(1.0)

    def test_ties_fifo_with_fresh_schedules(self):
        # A reschedule consumes one sequence number, exactly like a
        # fresh schedule -- FIFO among ties is preserved either way.
        sched = EventScheduler()
        order = []
        early = sched.schedule(0.5, order.append, "rescheduled")
        early.reschedule(2.0)
        sched.schedule(2.0, order.append, "fresh")
        sched.run()
        assert order == ["rescheduled", "fresh"]
