"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventScheduler, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventScheduler().now == 0.0

    def test_clock_starts_at_custom_time(self):
        assert EventScheduler(start_time=5.0).now == 5.0

    def test_schedule_returns_pending_event(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        assert event.pending
        assert event.time == 1.0

    def test_schedule_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sched = EventScheduler(start_time=10.0)
        with pytest.raises(SimulationError):
            sched.schedule_at(9.0, lambda: None)

    def test_schedule_zero_delay_allowed(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(0.0, fired.append, 1)
        sched.run()
        assert fired == [1]

    def test_callback_receives_args(self):
        sched = EventScheduler()
        got = []
        sched.schedule(1.0, lambda a, b: got.append((a, b)), "x", 2)
        sched.run()
        assert got == [("x", 2)]


class TestOrdering:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(3.0, order.append, 3)
        sched.schedule(1.0, order.append, 1)
        sched.schedule(2.0, order.append, 2)
        sched.run()
        assert order == [1, 2, 3]

    def test_ties_fire_fifo(self):
        sched = EventScheduler()
        order = []
        for i in range(10):
            sched.schedule(1.0, order.append, i)
        sched.run()
        assert order == list(range(10))

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(2.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [2.5]

    def test_nested_scheduling_during_event(self):
        sched = EventScheduler()
        order = []

        def outer():
            order.append("outer")
            sched.schedule(1.0, lambda: order.append("inner"))

        sched.schedule(1.0, outer)
        sched.run()
        assert order == ["outer", "inner"]
        assert sched.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, fired.append, 1)
        event.cancel()
        sched.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        event = Event(1.0, lambda: None, ())
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_cancelled_events_skipped_in_pending_count(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert sched.pending_count() == 1
        assert keep.pending

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        first = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        first.cancel()
        assert sched.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventScheduler().peek_time() is None


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run_until(3.0)
        assert fired == [1]
        assert sched.now == 3.0

    def test_run_until_leaves_future_events_pending(self):
        sched = EventScheduler()
        sched.schedule(5.0, lambda: None)
        sched.run_until(3.0)
        assert sched.pending_count() == 1

    def test_run_until_can_continue(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(5.0, fired.append, 5)
        sched.run_until(3.0)
        sched.run_until(10.0)
        assert fired == [1, 5]

    def test_run_until_past_horizon_rejected(self):
        sched = EventScheduler()
        sched.run_until(5.0)
        with pytest.raises(SimulationError):
            sched.run_until(3.0)

    def test_event_at_horizon_fires(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(3.0, fired.append, 3)
        sched.run_until(3.0)
        assert fired == [3]

    def test_stop_interrupts_run(self):
        sched = EventScheduler()
        fired = []

        def first():
            fired.append(1)
            sched.stop()

        sched.schedule(1.0, first)
        sched.schedule(2.0, fired.append, 2)
        sched.run()
        assert fired == [1]
        # The second event is still pending and can run later.
        sched.run()
        assert fired == [1, 2]


class TestAccounting:
    def test_events_processed_counter(self):
        sched = EventScheduler()
        for i in range(5):
            sched.schedule(float(i), lambda: None)
        sched.run()
        assert sched.events_processed == 5

    def test_step_returns_false_when_drained(self):
        sched = EventScheduler()
        assert sched.step() is False

    def test_step_fires_single_event(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, 1)
        sched.schedule(2.0, fired.append, 2)
        assert sched.step() is True
        assert fired == [1]
