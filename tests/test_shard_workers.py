"""Tests for the multiprocess lane pool (`repro.shard.workers`).

The headline property is three-way byte parity: `multiprocess`,
`in-process` and `serialized` execution (plus the LaneEngine adapter)
must produce identical merged rows and counters for the same program.
Program classes live at module level so their factories pickle.
"""

import os

import pytest

from repro.shard.lanes import run_program_on_lane_engine
from repro.shard.mailbox import ShardViolation
from repro.shard.workers import (
    LaneProgram,
    STATS_FIELDS,
    WorkerCrashError,
    run_lane_program,
)
from repro.sim.engine import SimulationError

LOOKAHEAD = 2.5
HORIZON = 40.0
SHARDS = 4
SEED = 7


class Pinger(LaneProgram):
    """Timers + RNG draws + cross-lane ping/pong: exercises every surface.

    Each lane ticks on its own period, draws from its fork, emits a row
    per tick, and pings the next lane one lookahead ahead; the receiver
    re-files the ping as a lane event and emits a pong row.
    """

    def setup(self, lane):
        lane.post(1.0 + 0.25 * lane.index, self.tick, lane, 0)

    def tick(self, lane, n):
        draw = lane.rng.stream("tick").random()
        lane.emit("tick", n, round(draw, 9))
        if n % 3 == 0:
            dest = (lane.index + 1) % lane.num_shards
            lane.send(dest, lane.now + LOOKAHEAD, "ping", (lane.index, n))
        lane.post(1.0 + 0.25 * lane.index, self.tick, lane, n + 1)

    def on_message(self, lane, message):
        lane.post_at(message.fire_time, self.pong, (lane, message.payload))

    def pong(self, lane, payload):
        lane.emit("pong", payload)


class Quiet(LaneProgram):
    """Message-free timers: the one-round-trip-per-window fast path."""

    def setup(self, lane):
        lane.post(1.0, self.tick, lane)

    def tick(self, lane):
        lane.emit(lane.index)
        lane.post(1.0, self.tick, lane)


class Dies(LaneProgram):
    """Kills its process mid-run without a word (no error frame)."""

    def setup(self, lane):
        lane.post(1.0, self.boom, lane)

    def boom(self, lane):
        if lane.index == 1:
            os._exit(3)


class Raises(LaneProgram):
    """Raises a recognizable exception inside an event."""

    def setup(self, lane):
        lane.post(1.0, self.boom)

    def boom(self):
        raise RuntimeError("lane program exploded deliberately")


class TooSoon(LaneProgram):
    """Breaks the lookahead contract: sends inside its own window."""

    def setup(self, lane):
        lane.post(1.0, self.tick, lane)

    def tick(self, lane):
        lane.send(0, lane.now + 0.1, "too-soon", ())


class SendsInSetup(LaneProgram):
    """Illegally sends outside an event (during setup)."""

    def setup(self, lane):
        lane.send(0, 10.0, "nope", ())


def run(workers, lookahead=LOOKAHEAD, program=Pinger, shards=SHARDS):
    return run_lane_program(
        program,
        num_shards=shards,
        lookahead_s=lookahead,
        horizon_s=HORIZON,
        seed=SEED,
        workers=workers,
    )


class TestParity:
    def test_multiprocess_matches_in_process(self):
        reference = run(workers=1)
        assert reference.execution == "in-process"
        assert reference.rows  # the workload actually ran
        assert any(row[3] == "pong" for row in reference.rows)
        for workers in (2, 4):
            result = run(workers=workers)
            assert result.execution == "multiprocess"
            assert result.rows == reference.rows
            for fieldname in STATS_FIELDS:
                if fieldname in ("execution", "workers"):
                    continue
                assert result.stats[fieldname] == reference.stats[fieldname], fieldname

    def test_serialized_matches_windowed(self):
        # Zero lookahead forbids future-window sends, so parity is
        # checked on a message-free program.
        windowed = run(workers=1, program=Quiet)
        serialized = run(workers=1, lookahead=0.0, program=Quiet)
        assert serialized.execution == "serialized"
        # The windowed horizon is quantized to the barrier grid, so an
        # event exactly at the horizon runs only in serialized mode
        # (same semantics as the LaneEngine; see test_shard_lanes.py).
        inside = [row for row in serialized.rows if row[0] < HORIZON]
        assert inside == windowed.rows

    def test_lane_engine_adapter_matches_pool(self):
        rows, stats = run_program_on_lane_engine(
            Pinger,
            num_shards=SHARDS,
            lookahead_s=LOOKAHEAD,
            horizon_s=HORIZON,
            seed=SEED,
        )
        assert rows == run(workers=4).rows
        assert stats["num_shards"] == SHARDS

    def test_repeat_runs_identical(self):
        assert run(workers=2).rows == run(workers=2).rows


class TestStats:
    def test_stats_shape_and_consistency(self):
        result = run(workers=4)
        assert set(result.stats) == set(STATS_FIELDS)
        assert result.stats["workers"] == 4
        assert result.stats["num_shards"] == SHARDS
        assert result.stats["lookahead_s"] == LOOKAHEAD
        assert result.stats["windows"] > 0
        assert result.stats["total_events"] == sum(result.stats["events_by_lane"])
        assert result.stats["rows_emitted"] == len(result.rows)
        assert result.stats["messages_sent"] > 0
        # Trailing sends from the final window are delivered but their
        # events never run, so delivered can lag sent by at most that tail.
        assert result.stats["messages_delivered"] <= result.stats["messages_sent"]

    def test_rows_are_in_canonical_order(self):
        rows = run(workers=4).rows
        tags = [(row[0], row[1], row[2]) for row in rows]
        assert tags == sorted(tags)
        assert len(set(tags)) == len(tags)


class TestFallbacksAndClamps:
    def test_zero_lookahead_serializes_even_with_workers(self):
        # Serialized windows across processes would pay IPC per event
        # time for zero parallelism; the pool is bypassed entirely.
        result = run(workers=4, lookahead=0.0, program=Quiet)
        assert result.execution == "serialized"
        assert result.stats["workers"] == 1

    def test_workers_clamped_to_shard_count(self):
        result = run(workers=16, shards=2)
        assert result.execution == "multiprocess"
        assert result.stats["workers"] == 2
        assert result.rows == run(workers=1, shards=2).rows

    def test_single_worker_stays_in_process(self):
        assert run(workers=1).execution == "in-process"


class TestFailures:
    def test_worker_death_surfaces_not_hangs(self):
        with pytest.raises(WorkerCrashError) as err:
            run_lane_program(
                Dies,
                num_shards=2,
                lookahead_s=LOOKAHEAD,
                horizon_s=HORIZON,
                seed=SEED,
                workers=2,
                barrier_timeout_s=30.0,
            )
        assert "exit code" in str(err.value)

    def test_remote_exception_carries_traceback(self):
        with pytest.raises(WorkerCrashError) as err:
            run(workers=2, program=Raises)
        assert "lane program exploded deliberately" in str(err.value)

    def test_in_window_send_violates_lookahead_in_process(self):
        with pytest.raises(ShardViolation):
            run_lane_program(
                TooSoon,
                num_shards=2,
                lookahead_s=LOOKAHEAD,
                horizon_s=HORIZON,
                seed=SEED,
                workers=1,
            )


class TestValidation:
    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_lane_program(Quiet, num_shards=0, lookahead_s=1.0, horizon_s=1.0)
        with pytest.raises(ValueError):
            run_lane_program(Quiet, num_shards=1, lookahead_s=-1.0, horizon_s=1.0)
        with pytest.raises(ValueError):
            run_lane_program(
                Quiet, num_shards=1, lookahead_s=1.0, horizon_s=1.0, workers=0
            )
        with pytest.raises(SimulationError):
            run_lane_program(Quiet, num_shards=1, lookahead_s=1.0, horizon_s=-1.0)

    def test_send_outside_event_rejected(self):
        with pytest.raises(WorkerCrashError) as err:
            run_lane_program(
                SendsInSetup,
                num_shards=2,
                lookahead_s=LOOKAHEAD,
                horizon_s=HORIZON,
                workers=2,
            )
        assert "only legal from inside an event" in str(err.value)
