"""Unit tests for the dataset container (queries, validation, JSON)."""

import pytest

from repro.trace.dataset import DatasetError, TraceDataset
from repro.trace.entities import Category, Channel, User, Video


def _micro_dataset():
    """A hand-built two-channel dataset for validation edge cases."""
    dataset = TraceDataset(crawl_day=100, seed=1)
    dataset.categories[0] = Category(0, "Music", channel_ids=[0])
    dataset.categories[1] = Category(1, "Gaming", channel_ids=[1])
    dataset.channels[0] = Channel(0, owner_user_id=0, category_id=0)
    dataset.channels[1] = Channel(1, owner_user_id=1, category_id=1)
    for vid, (ch, views) in enumerate([(0, 100), (0, 50), (1, 10)]):
        dataset.videos[vid] = Video(
            video_id=vid,
            channel_id=ch,
            category_id=dataset.channels[ch].category_id,
            upload_day=10,
            length_seconds=60.0,
            views=views,
            favorites=views // 10,
        )
        dataset.channels[ch].video_ids.append(vid)
        mix = dataset.channels[ch].category_mix
        cat = dataset.channels[ch].category_id
        mix[cat] = mix.get(cat, 0) + 1
    dataset.users[0] = User(0, owned_channel_id=0, interest_ids={0},
                            favorite_video_ids=[0])
    dataset.users[1] = User(1, owned_channel_id=1, interest_ids={1},
                            favorite_video_ids=[2])
    dataset.users[0].subscribed_channel_ids.add(1)
    dataset.channels[1].subscriber_ids.add(0)
    return dataset


class TestQueries:
    def test_channel_of_video(self):
        dataset = _micro_dataset()
        assert dataset.channel_of_video(0) == 0
        assert dataset.channel_of_video(2) == 1

    def test_category_queries(self):
        dataset = _micro_dataset()
        assert dataset.category_of_channel(1) == 1
        assert dataset.category_of_video(2) == 1
        assert list(dataset.channels_of_category(0)) == [0]

    def test_channel_total_views(self):
        dataset = _micro_dataset()
        assert dataset.channel_total_views(0) == 150
        assert dataset.channel_total_views(1) == 10

    def test_channel_view_frequency_uses_days_online(self):
        dataset = _micro_dataset()
        # Videos uploaded day 10, crawl day 100 -> 90 days online.
        expected = (100 / 90 + 50 / 90) / 2
        assert dataset.channel_view_frequency(0) == pytest.approx(expected)

    def test_subscription_queries(self):
        dataset = _micro_dataset()
        assert dataset.subscriptions_of_user(0) == {1}
        assert dataset.subscribers_of_channel(1) == {0}

    def test_summary_mentions_counts(self):
        text = _micro_dataset().summary()
        assert "2 users" in text and "2 channels" in text and "3 videos" in text


class TestValidation:
    def test_valid_dataset_passes(self):
        _micro_dataset().validate()

    def test_video_with_missing_channel_fails(self):
        dataset = _micro_dataset()
        dataset.videos[0].channel_id = 99
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_negative_views_fail(self):
        dataset = _micro_dataset()
        dataset.videos[0].views = -1
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_foreign_video_in_channel_fails(self):
        dataset = _micro_dataset()
        dataset.channels[0].video_ids.append(2)  # belongs to channel 1
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_unmirrored_subscription_fails(self):
        dataset = _micro_dataset()
        dataset.users[1].subscribed_channel_ids.add(0)  # not mirrored
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_unknown_favorite_fails(self):
        dataset = _micro_dataset()
        dataset.users[0].favorite_video_ids.append(999)
        with pytest.raises(DatasetError):
            dataset.validate()

    def test_nonpositive_length_fails(self):
        dataset = _micro_dataset()
        dataset.videos[1].length_seconds = 0.0
        with pytest.raises(DatasetError):
            dataset.validate()


class TestSerialization:
    def test_json_round_trip_micro(self):
        dataset = _micro_dataset()
        restored = TraceDataset.from_json(dataset.to_json())
        assert restored.to_json() == dataset.to_json()
        restored.validate()

    def test_json_round_trip_synthesized(self, tiny_dataset):
        restored = TraceDataset.from_json(tiny_dataset.to_json())
        assert restored.num_users == tiny_dataset.num_users
        assert restored.num_videos == tiny_dataset.num_videos
        assert restored.to_json() == tiny_dataset.to_json()

    def test_save_and_load(self, tmp_path):
        dataset = _micro_dataset()
        path = tmp_path / "trace.json"
        dataset.save(str(path))
        restored = TraceDataset.load(str(path))
        assert restored.to_json() == dataset.to_json()

    def test_round_trip_preserves_types(self):
        restored = TraceDataset.from_json(_micro_dataset().to_json())
        assert isinstance(restored.users[0].subscribed_channel_ids, set)
        assert isinstance(restored.channels[0].category_mix, dict)
        assert all(isinstance(k, int) for k in restored.channels[0].category_mix)
