"""Unit tests for TTL-scoped flooding search."""

import pytest

from repro.overlay.flood import ttl_flood


def _line_graph(n):
    """0 - 1 - 2 - ... - (n-1)."""
    adjacency = {i: [] for i in range(n)}
    for i in range(n - 1):
        adjacency[i].append(i + 1)
        adjacency[i + 1].append(i)
    return adjacency


class TestTtlFlood:
    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ttl_flood(0, [], lambda n: [], lambda n: False, ttl=0)

    def test_no_neighbors_fails(self):
        result = ttl_flood(0, [], lambda n: [], lambda n: False, ttl=2)
        assert not result.success
        assert result.contacted == 0

    def test_direct_neighbor_found_at_hop_one(self):
        adj = _line_graph(3)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 1, ttl=2)
        assert result.found == 1
        assert result.hops == 1
        assert result.path == [0, 1]

    def test_two_hop_found(self):
        adj = _line_graph(4)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 2, ttl=2)
        assert result.found == 2
        assert result.hops == 2
        assert result.path == [0, 1, 2]

    def test_ttl_limits_depth(self):
        adj = _line_graph(6)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 4, ttl=2)
        assert not result.success

    def test_ttl_three_reaches_further(self):
        adj = _line_graph(6)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 3, ttl=3)
        assert result.found == 3
        assert result.hops == 3

    def test_requester_not_a_holder(self):
        adj = _line_graph(3)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 0, ttl=2)
        assert not result.success

    def test_bfs_finds_minimal_hops(self):
        # Diamond: 0-1-3, 0-2-3; holder 3 reachable at depth 2 both ways.
        adj = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 3, ttl=5)
        assert result.hops == 2

    def test_nearest_holder_wins(self):
        adj = _line_graph(5)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n in (2, 4), ttl=4)
        assert result.found == 2

    def test_contacted_counts_distinct_peers(self):
        # Star: requester linked to 4 leaves, none a holder.
        adj = {0: [1, 2, 3, 4], 1: [0], 2: [0], 3: [0], 4: [0]}
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: False, ttl=2)
        assert result.contacted == 4

    def test_cycle_does_not_loop(self):
        # Triangle with no holder: flood terminates.
        adj = {0: [1, 2], 1: [0, 2], 2: [0, 1]}
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: False, ttl=10)
        assert not result.success
        assert result.contacted == 2

    def test_path_walkable(self):
        adj = _line_graph(4)
        result = ttl_flood(0, adj[0], adj.__getitem__, lambda n: n == 3, ttl=3)
        for a, b in zip(result.path, result.path[1:]):
            assert b in adj[a]

    def test_start_neighbors_deduplicated(self):
        adj = {0: [1, 1, 1], 1: [0]}
        result = ttl_flood(0, [1, 1, 1], adj.__getitem__, lambda n: False, ttl=2)
        assert result.contacted == 1
