"""Unit tests for the evaluation-suite harness (non-simulation parts).

The simulation-backed figures are covered by tests/integration; here we
test the pure logic: variant registry, analytical figure, Table I
rendering, and row formatting.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import (
    VARIANTS,
    EvaluationFigure,
    EvaluationSuite,
    FigureRow,
)


@pytest.fixture()
def suite(smoke_config):
    return EvaluationSuite(config=smoke_config)


class TestVariants:
    def test_five_systems(self):
        assert len(VARIANTS) == 5
        labels = [label for label, _name, _overrides in VARIANTS]
        assert "PA-VoD" in labels
        assert "SocialTube w/ PF" in labels and "SocialTube w/o PF" in labels
        assert "NetTube w/ PF" in labels and "NetTube w/o PF" in labels

    def test_prefetch_flags_match_labels(self):
        for label, _name, overrides in VARIANTS:
            if "w/o PF" in label:
                assert overrides.get("enable_prefetch") is False
            elif "w/ PF" in label:
                assert overrides.get("enable_prefetch") is True

    def test_unknown_variant_rejected(self, suite):
        with pytest.raises(KeyError):
            suite.result("BitTorrent")


class TestFig15:
    def test_rows_and_notes(self, suite):
        figure = suite.fig15_maintenance_model()
        assert figure.figure == "Fig 15"
        labels = [row.label for row in figure.rows]
        assert labels == ["m=1", "m=2", "m=5", "m=10", "m=20", "m=50"]
        assert any("crossover" in note for note in figure.notes)

    def test_max_videos_truncates_rows(self, suite):
        figure = suite.fig15_maintenance_model(max_videos=5)
        assert [row.label for row in figure.rows] == ["m=1", "m=2", "m=5"]


class TestTable1:
    def test_paper_column_matches_table1(self, suite):
        figure = suite.table1_parameters()
        values = {row.label: row.values for row in figure.rows}
        assert values["Number of nodes"]["paper"] == 10000
        assert values["Number of channels"]["paper"] == 545
        assert values["TTL"]["paper"] == 2

    def test_this_run_column_matches_config(self, suite, smoke_config):
        figure = suite.table1_parameters()
        values = {row.label: row.values for row in figure.rows}
        assert values["Number of nodes"]["this_run"] == smoke_config.num_nodes


class TestRendering:
    def test_figure_row_render(self):
        row = FigureRow(label="X", values={"a": 1.0, "b": 2.5})
        text = row.render()
        assert "X" in text and "a=1" in text and "b=2.5" in text

    def test_evaluation_figure_render(self):
        figure = EvaluationFigure(
            figure="Fig 99",
            title="demo",
            rows=[FigureRow(label="X", values={"a": 1.0})],
            notes=["hello"],
        )
        rows = figure.render_rows()
        assert rows[0] == "Fig 99: demo"
        assert any("note: hello" in row for row in rows)

    def test_environment_selects_config(self, suite, smoke_config):
        assert suite._config_for("peersim") is suite.config
        assert suite._config_for("planetlab") is suite.planetlab_config
