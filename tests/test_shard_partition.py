"""Unit tests for the deterministic interest-community partitioner."""

import pytest

from repro.shard.partition import (
    UNAFFILIATED,
    CommunityPartition,
    primary_interest,
)
from repro.trace.synthesizer import TraceConfig, synthesize_trace

NUM_NODES = 60


@pytest.fixture(scope="module")
def dataset():
    return synthesize_trace(
        TraceConfig(
            num_users=NUM_NODES, num_channels=12, num_videos=300,
            num_categories=4, seed=7,
        )
    )


class TestPrimaryInterest:
    def test_deterministic(self, dataset):
        for user_id in range(NUM_NODES):
            assert primary_interest(dataset, user_id) == primary_interest(
                dataset, user_id
            )

    def test_subscribed_users_land_in_a_real_category(self, dataset):
        categories = {
            dataset.category_of_channel(c)
            for u in range(NUM_NODES)
            for c in dataset.subscriptions_of_user(u)
        }
        for user_id in range(NUM_NODES):
            if dataset.subscriptions_of_user(user_id):
                assert primary_interest(dataset, user_id) in categories

    def test_unaffiliated_fallback(self, dataset):
        # Every cluster id is either a real signal or the sentinel.
        for user_id in range(NUM_NODES):
            cluster = primary_interest(dataset, user_id)
            assert cluster == UNAFFILIATED or cluster >= 0


class TestFromDataset:
    def test_deterministic(self, dataset):
        a = CommunityPartition.from_dataset(dataset, 4, NUM_NODES)
        b = CommunityPartition.from_dataset(dataset, 4, NUM_NODES)
        assert a == b

    def test_clusters_stay_whole(self, dataset):
        # The point of the partition: one interest community never
        # straddles a shard boundary.
        partition = CommunityPartition.from_dataset(dataset, 4, NUM_NODES)
        shard_of_cluster = {}
        for node_id in range(NUM_NODES):
            cluster = primary_interest(dataset, node_id)
            shard = partition.owner(node_id)
            assert shard_of_cluster.setdefault(cluster, shard) == shard

    def test_sizes_sum_to_node_count(self, dataset):
        partition = CommunityPartition.from_dataset(dataset, 4, NUM_NODES)
        sizes = partition.shard_sizes()
        assert len(sizes) == 4
        assert sum(sizes) == NUM_NODES

    def test_surplus_shards_stay_empty(self, dataset):
        # More shards than interest clusters is legal: the extras just
        # carry no nodes (and the run still byte-matches shards=1).
        clusters = {primary_interest(dataset, u) for u in range(NUM_NODES)}
        num_shards = len(clusters) + 3
        partition = CommunityPartition.from_dataset(dataset, num_shards, NUM_NODES)
        sizes = partition.shard_sizes()
        assert sum(sizes) == NUM_NODES
        assert sizes.count(0) >= 3

    def test_out_of_range_actors_belong_to_shard_zero(self, dataset):
        partition = CommunityPartition.from_dataset(dataset, 4, NUM_NODES)
        assert partition.owner(-1) == 0  # the central server
        assert partition.owner(NUM_NODES + 5) == 0

    def test_one_shard_is_the_trivial_partition(self, dataset):
        partition = CommunityPartition.from_dataset(dataset, 1, NUM_NODES)
        assert partition == CommunityPartition.single(NUM_NODES)
        assert set(partition.shard_of_node) == {0}
        assert partition.shard_of_cluster == {}

    def test_invalid_shard_count_rejected(self, dataset):
        with pytest.raises(ValueError):
            CommunityPartition.from_dataset(dataset, 0, NUM_NODES)
