"""Unit tests for the heavy-tailed samplers."""

import math
import random

import pytest

from repro.trace.distributions import (
    DiscreteSampler,
    bounded_pareto,
    exponential_growth_day,
    lognormal,
    zipf_probabilities,
    zipf_sampler,
    zipf_weights,
)


class TestZipfWeights:
    def test_first_weight_is_one(self):
        assert zipf_weights(5)[0] == 1.0

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, 1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        assert zipf_weights(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_probabilities_sum_to_one(self):
        assert sum(zipf_probabilities(30, 1.0)) == pytest.approx(1.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)

    def test_paper_top1_mass_for_25_videos(self):
        # Section IV-B: p_1 = 26.2% for a 25-video channel.
        assert zipf_probabilities(25, 1.0)[0] == pytest.approx(0.262, abs=0.001)


class TestDiscreteSampler:
    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([1.0, -0.5])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSampler([0.0, 0.0])

    def test_samples_in_range(self):
        sampler = DiscreteSampler([1, 2, 3])
        rng = random.Random(0)
        assert all(0 <= sampler.sample(rng) <= 2 for _ in range(200))

    def test_zero_weight_never_sampled(self):
        sampler = DiscreteSampler([0.0, 1.0])
        rng = random.Random(0)
        assert all(sampler.sample(rng) == 1 for _ in range(200))

    def test_frequencies_proportional_to_weights(self):
        sampler = DiscreteSampler([1.0, 3.0])
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(20000)]
        frac_heavy = draws.count(1) / len(draws)
        assert 0.72 < frac_heavy < 0.78

    def test_len(self):
        assert len(DiscreteSampler([1, 2, 3])) == 3

    def test_zipf_sampler_prefers_low_ranks(self):
        sampler = zipf_sampler(100, 1.0)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(5000)]
        assert draws.count(0) > draws.count(50)


class TestBoundedPareto:
    def test_within_bounds(self):
        rng = random.Random(0)
        for _ in range(500):
            x = bounded_pareto(rng, alpha=1.0, low=1.0, high=100.0)
            assert 1.0 <= x <= 100.0

    def test_invalid_parameters_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, alpha=1.0, low=0.0, high=2.0)
        with pytest.raises(ValueError):
            bounded_pareto(rng, alpha=1.0, low=3.0, high=2.0)

    def test_heavy_tail(self):
        # A low alpha should produce samples spanning orders of magnitude.
        rng = random.Random(0)
        draws = [bounded_pareto(rng, 0.6, 1.0, 1e4) for _ in range(3000)]
        draws.sort()
        assert draws[-30] > 100 * draws[len(draws) // 2]

    def test_higher_alpha_lighter_tail(self):
        rng_a = random.Random(0)
        rng_b = random.Random(0)
        light = sorted(bounded_pareto(rng_a, 3.0, 1.0, 1e4) for _ in range(2000))
        heavy = sorted(bounded_pareto(rng_b, 0.5, 1.0, 1e4) for _ in range(2000))
        assert light[-1] < heavy[-1]


class TestLognormal:
    def test_positive(self):
        rng = random.Random(0)
        assert all(lognormal(rng, 0.0, 1.0) > 0 for _ in range(100))

    def test_sigma_zero_is_exact(self):
        rng = random.Random(0)
        assert lognormal(rng, math.log(5.0), 0.0) == pytest.approx(5.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            lognormal(random.Random(0), 0.0, -1.0)


class TestExponentialGrowthDay:
    def test_within_horizon(self):
        rng = random.Random(0)
        for _ in range(500):
            day = exponential_growth_day(rng, 970, 2.0)
            assert 0 <= day < 970

    def test_growth_skews_late(self):
        rng = random.Random(0)
        days = [exponential_growth_day(rng, 1000, 3.0) for _ in range(5000)]
        late = sum(1 for d in days if d >= 500)
        assert late > 0.65 * len(days)

    def test_zero_rate_is_uniformish(self):
        rng = random.Random(0)
        days = [exponential_growth_day(rng, 1000, 0.0) for _ in range(5000)]
        late = sum(1 for d in days if d >= 500)
        assert 0.45 * len(days) < late < 0.55 * len(days)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            exponential_growth_day(random.Random(0), 0, 1.0)
