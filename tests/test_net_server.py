"""Unit tests for the central server (tracker / oracle / fallback source)."""

import random

import pytest

from repro.net.server import CentralServer


class TestPresence:
    def test_online_offline_cycle(self, server):
        server.node_online(1)
        assert server.is_online(1)
        assert server.online_count == 1
        server.node_offline(1)
        assert not server.is_online(1)
        assert server.online_count == 0

    def test_offline_purges_all_tracker_maps(self, server):
        server.node_online(1)
        server.register_channel_member(0, 1)
        server.register_video_overlay_member(5, 1)
        server.watch_started(5, 1)
        server.node_offline(1)
        assert 1 not in server.channel_members(0)
        assert 1 not in server.video_overlay_members(5)
        assert server.current_watchers(5) == []


class TestChannelTracker:
    def test_register_and_pick(self, server):
        server.register_channel_member(0, 1)
        server.register_channel_member(0, 2)
        pick = server.random_channel_member(0)
        assert pick in (1, 2)

    def test_exclude_respected(self, server):
        server.register_channel_member(0, 1)
        assert server.random_channel_member(0, exclude=1) is None

    def test_empty_channel_returns_none(self, server):
        assert server.random_channel_member(3) is None

    def test_unregister(self, server):
        server.register_channel_member(0, 1)
        server.unregister_channel_member(0, 1)
        assert server.random_channel_member(0) is None

    def test_subscription_reports_counted(self, server):
        before = server.subscription_reports
        server.register_channel_member(0, 1)
        assert server.subscription_reports == before + 1

    def test_category_picks_span_channels(self, server, tiny_dataset):
        category = next(
            c for c in tiny_dataset.categories.values() if len(c.channel_ids) >= 2
        )
        ch_a, ch_b = category.channel_ids[:2]
        server.register_channel_member(ch_a, 10)
        server.register_channel_member(ch_b, 20)
        picks = server.random_members_per_channel_in_category(category.category_id)
        assert set(picks) == {10, 20}

    def test_category_picks_round_robin_past_single_channel(self, server, tiny_dataset):
        # One occupied channel with several members: the round-robin
        # draw still fills the requested limit.
        category = next(iter(tiny_dataset.categories.values()))
        channel = category.channel_ids[0]
        for member in (1, 2, 3, 4):
            server.register_channel_member(channel, member)
        picks = server.random_members_per_channel_in_category(
            category.category_id, limit=3
        )
        assert len(picks) == 3
        assert len(set(picks)) == 3

    def test_category_picks_respect_exclude(self, server, tiny_dataset):
        category = next(iter(tiny_dataset.categories.values()))
        channel = category.channel_ids[0]
        server.register_channel_member(channel, 1)
        picks = server.random_members_per_channel_in_category(
            category.category_id, exclude=1
        )
        assert 1 not in picks


class TestHolderAssist:
    def test_finds_holder(self, server, tiny_dataset):
        category = next(iter(tiny_dataset.categories.values()))
        channel = category.channel_ids[0]
        server.register_channel_member(channel, 42)
        found = server.find_holder_in_category(
            category.category_id, is_holder=lambda n: n == 42
        )
        assert found == 42

    def test_returns_none_when_no_holder(self, server, tiny_dataset):
        category = next(iter(tiny_dataset.categories.values()))
        channel = category.channel_ids[0]
        server.register_channel_member(channel, 42)
        assert (
            server.find_holder_in_category(
                category.category_id, is_holder=lambda n: False
            )
            is None
        )

    def test_scan_limit_bounds_work(self, server, tiny_dataset):
        category = next(iter(tiny_dataset.categories.values()))
        channel = category.channel_ids[0]
        for member in range(50):
            server.register_channel_member(channel, member)
        calls = []

        def is_holder(n):
            calls.append(n)
            return False

        server.find_holder_in_category(
            category.category_id, is_holder=is_holder, scan_limit=10
        )
        assert len(calls) <= 10


class TestVideoOverlayTracker:
    def test_register_and_sample(self, server):
        for member in (1, 2, 3):
            server.register_video_overlay_member(7, member)
        picks = server.random_video_overlay_members(7, 2)
        assert len(picks) == 2
        assert set(picks) <= {1, 2, 3}

    def test_sample_all_when_fewer_than_count(self, server):
        server.register_video_overlay_member(7, 1)
        assert server.random_video_overlay_members(7, 5) == [1]

    def test_exclude(self, server):
        server.register_video_overlay_member(7, 1)
        assert server.random_video_overlay_members(7, 5, exclude=1) == []


class TestWatcherTracker:
    def test_watchers_lifecycle(self, server):
        server.watch_started(9, 1)
        assert server.current_watchers(9) == [1]
        server.watch_finished(9, 1)
        assert server.current_watchers(9) == []

    def test_watchers_exclude_requester(self, server):
        server.watch_started(9, 1)
        assert server.current_watchers(9, exclude=1) == []


class TestPopularityOracle:
    def test_top_videos_sorted_by_views(self, server, tiny_dataset):
        channel = max(tiny_dataset.channels.values(), key=lambda c: c.num_videos)
        top = server.top_videos_of_channel(channel.channel_id, 5)
        views = [tiny_dataset.video_views(v) for v in top]
        assert views == sorted(views, reverse=True)
        assert len(top) == min(5, channel.num_videos)

    def test_top_videos_belong_to_channel(self, server, tiny_dataset):
        channel = next(iter(tiny_dataset.channels.values()))
        top = server.top_videos_of_channel(channel.channel_id, 3)
        assert all(tiny_dataset.channel_of_video(v) == channel.channel_id for v in top)


class TestFallbackSource:
    def test_serve_counts_requests(self, server):
        before = server.requests_served
        grant = server.serve(1000.0)
        assert server.requests_served == before + 1
        assert grant.rate_bps > 0
        grant.release()

    def test_server_uplink_is_shared(self, tiny_dataset):
        server = CentralServer(tiny_dataset, capacity_bps=1_000_000, rng=random.Random(0))
        g1 = server.serve(0.0)
        g2 = server.serve(0.0)
        assert g2.rate_bps == pytest.approx(500_000)
        g1.release()
        g2.release()
