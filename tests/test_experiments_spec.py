"""Unit tests for the typed protocol registry and ExperimentSpec."""

import dataclasses
import pickle

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.registry import (
    SocialTubeParams,
    default_params,
    get_protocol,
    protocol_names,
    register_protocol,
    resolve_params,
    unregister_protocol,
)
from repro.experiments.spec import ExperimentSpec, seed_sweep
from repro.experiments.trace_cache import TraceCache
from repro.trace.synthesizer import TraceConfig

MICRO = SimulationConfig(
    num_nodes=40,
    trace=TraceConfig(num_users=40, num_channels=10, num_videos=200,
                      num_categories=4, seed=10),
    sessions_per_user=2,
    videos_per_session=4,
    mean_off_time_s=60.0,
    seed=10,
)


@dataclasses.dataclass(frozen=True)
class _FakeParams:
    knob: int = 3


class _FakeProtocol:
    def __init__(self, dataset, server, rng, knob=3):
        self.knob = knob


class TestRegistry:
    def test_builtin_protocols_registered(self):
        assert protocol_names() == ["gridcast", "nettube", "pavod", "socialtube"]

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            get_protocol("bittorrent")

    def test_register_round_trip(self):
        entry = register_protocol("fake", _FakeProtocol, _FakeParams)
        try:
            assert get_protocol("fake") is entry
            assert "fake" in protocol_names()
            assert default_params("fake", MICRO) == _FakeParams()
            assert resolve_params("fake", MICRO, {"knob": 9}) == _FakeParams(knob=9)
        finally:
            unregister_protocol("fake")
        with pytest.raises(ValueError):
            get_protocol("fake")

    def test_defaults_come_from_config(self):
        params = default_params("socialtube", MICRO)
        assert isinstance(params, SocialTubeParams)
        assert params.inner_link_limit == MICRO.inner_links
        assert params.inter_link_limit == MICRO.inter_links
        assert params.ttl == MICRO.ttl

    def test_bad_override_key_rejected(self):
        with pytest.raises(TypeError, match="valid fields"):
            resolve_params("socialtube", MICRO, {"no_such_knob": 1})

    def test_params_type_must_be_dataclass(self):
        with pytest.raises(TypeError):
            register_protocol("bad", _FakeProtocol, dict)


class TestExperimentSpec:
    def test_unknown_protocol_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="bittorrent", config=MICRO)

    def test_wrong_params_type_rejected(self):
        with pytest.raises(TypeError):
            ExperimentSpec(
                protocol="socialtube", config=MICRO, params=_FakeParams()
            )

    def test_content_hash_is_stable_and_seed_sensitive(self):
        a = ExperimentSpec(protocol="socialtube", config=MICRO)
        b = ExperimentSpec(protocol="socialtube", config=MICRO)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != a.with_seed(11).content_hash()

    def test_explicit_default_params_share_cache_slot(self):
        implicit = ExperimentSpec(protocol="socialtube", config=MICRO)
        explicit = ExperimentSpec(
            protocol="socialtube",
            config=MICRO,
            params=resolve_params("socialtube", MICRO),
        )
        assert implicit.content_hash() == explicit.content_hash()

    def test_hash_and_equality(self):
        a = ExperimentSpec(protocol="socialtube", config=MICRO)
        b = ExperimentSpec(protocol="socialtube", config=MICRO)
        assert a == b
        assert hash(a) == hash(b)
        assert hash(a) != hash(a.with_seed(11))

    def test_pickle_round_trip_preserves_hash(self):
        spec = ExperimentSpec(
            protocol="nettube",
            config=MICRO,
            params=resolve_params("nettube", MICRO, {"search_hops": 3}),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()
        assert clone.trace_hash() == spec.trace_hash()

    def test_with_seed_keeps_trace_recipe(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.config.trace == spec.config.trace
        assert reseeded.trace_hash() == spec.trace_hash()

    def test_with_params_overrides_resolved_defaults(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        tweaked = spec.with_params(enable_prefetch=False)
        assert tweaked.resolved_params().enable_prefetch is False
        assert tweaked.resolved_params().ttl == MICRO.ttl

    def test_seed_sweep_order(self):
        spec = ExperimentSpec(protocol="pavod", config=MICRO)
        sweep = seed_sweep(spec, [3, 1, 2])
        assert [s.seed for s in sweep] == [3, 1, 2]

    def test_label(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        assert spec.label() == "socialtube/peersim/seed=10"

    def test_shards_are_hash_neutral(self):
        # Sharding is an execution detail under the determinism gate:
        # any shard count reproduces the same bytes, so it must never
        # perturb content hashes (baselines, result-cache keys).
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        sharded = spec.with_shards(4)
        assert sharded.shards == 4
        assert sharded.content_hash() == spec.content_hash()
        assert sharded != spec  # equality still sees the field

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="socialtube", config=MICRO, shards=0)

    def test_workers_are_hash_neutral(self):
        # Like shards: the worker count is an execution detail under
        # the byte-parity gate and may never perturb content hashes.
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        pooled = spec.with_workers(4)
        assert pooled.workers == 4
        assert pooled.content_hash() == spec.content_hash()
        assert pooled != spec  # equality still sees the field

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(protocol="socialtube", config=MICRO, workers=0)


class TestTraceCache:
    def test_identical_recipes_synthesize_once(self):
        cache = TraceCache()
        first = cache.dataset_for(MICRO.trace)
        second = cache.dataset_for(dataclasses.replace(MICRO.trace))
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_recipes_get_distinct_corpora(self):
        cache = TraceCache()
        a = cache.dataset_for(MICRO.trace)
        b = cache.dataset_for(dataclasses.replace(MICRO.trace, seed=11))
        assert a is not b
        assert len(cache) == 2

    def test_serialized_blob_round_trips(self):
        cache = TraceCache()
        blob = cache.serialized(MICRO.trace)
        dataset = pickle.loads(blob)
        assert len(dataset.users) == MICRO.trace.num_users
