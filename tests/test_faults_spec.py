"""FaultPlan on ExperimentSpec: hash awareness and the zero-plan contract."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.faults.plan import FaultPlan


@pytest.fixture()
def base_spec():
    return ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale(seed=7)
    )


class TestZeroPlan:
    def test_no_plan_means_no_faults(self, base_spec):
        assert not base_spec.has_faults()
        assert base_spec.resolved_faults() is None
        assert "faults" not in base_spec.canonical_payload()

    def test_all_zero_plan_is_hash_identical_to_no_plan(self, base_spec):
        """The acceptance contract: an all-zero FaultPlan changes nothing."""
        zeroed = base_spec.with_faults(FaultPlan())
        assert not zeroed.has_faults()
        assert zeroed.resolved_faults() is None
        assert zeroed.content_hash() == base_spec.content_hash()
        assert zeroed.canonical_payload() == base_spec.canonical_payload()


class TestNonzeroPlan:
    def test_nonzero_plan_changes_the_hash(self, base_spec):
        chaotic = base_spec.with_faults(FaultPlan.demo())
        assert chaotic.has_faults()
        assert chaotic.resolved_faults() == FaultPlan.demo()
        assert chaotic.content_hash() != base_spec.content_hash()
        assert chaotic.canonical_payload()["faults"] == FaultPlan.demo().to_dict()

    def test_different_plans_hash_differently(self, base_spec):
        a = base_spec.with_faults(FaultPlan(crash_rate_per_hour=1.0))
        b = base_spec.with_faults(FaultPlan(crash_rate_per_hour=2.0))
        assert a.content_hash() != b.content_hash()

    def test_with_faults_preserves_the_rest_of_the_spec(self, base_spec):
        chaotic = base_spec.with_faults(FaultPlan.demo())
        assert chaotic.protocol == base_spec.protocol
        assert chaotic.config == base_spec.config
        assert chaotic.environment == base_spec.environment

    def test_faults_must_be_a_plan(self):
        with pytest.raises(TypeError):
            ExperimentSpec(
                protocol="socialtube",
                config=SimulationConfig.smoke_scale(seed=7),
                faults={"crash_rate_per_hour": 1.0},
            )
