"""The disabled tracer must be effectively free (<2% of run wall-clock).

Direct A/B wall-clock comparison of two full runs is noisy in CI, so
the bound is established constructively:

1. run the spec once *with* tracing and count emitted rows by kind --
   an upper bound on how many tracer hook invocations the run performs
   (every instrumented site emits at most one row when enabled);
2. measure the per-call cost of the disabled-path shapes each kind
   implies: event rows come from ``if tracer:``-guarded sites (a
   single falsy ``bool`` when disabled), span rows from unguarded
   ``with tracer.span(...)`` blocks or detached ``begin``/``end``
   pairs (no-op method calls on ``NULL_TRACER``);
3. assert that the summed kind-count x per-call products stay under
   2% of the measured untraced run wall-clock.

This is robust because each factor is measured, not assumed, and the
product over-counts: every row is charged a guard check even though
many sites emit several rows per guard, and every span row is charged
the *most expensive* of the two span shapes.  The timing loop's own
iteration cost (comparable to the guard check itself) is measured via
an empty loop and subtracted, since real call sites pay the hook, not
a dedicated loop step.
"""

import time

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.obs.export import run_traced
from repro.obs.tracer import NULL_TRACER


def _best_of(measure, repeats=3):
    """Minimum of ``repeats`` calls to a zero-arg timing function."""
    return min(measure() for _ in range(repeats))


def _time_empty_loop(n: int) -> float:
    """Seconds for the bare timing loop -- the harness's own cost."""
    start = time.perf_counter()
    for _ in range(n):
        pass
    return time.perf_counter() - start


def _time_guard_checks(n: int) -> float:
    """Seconds for n guarded hook sites with the tracer disabled.

    This is the shape of every ``event`` site in the tree: the
    ``if tracer:`` guard short-circuits on the falsy ``NullTracer``
    before any method call or attr construction happens.
    """
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(n):
        if tracer:
            tracer.event("x")
    return time.perf_counter() - start


def _time_with_spans(n: int) -> float:
    """Seconds for n disabled ``with tracer.span(...)`` sites."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(n):
        with tracer.span("x"):
            pass
    return time.perf_counter() - start


def _time_begin_end_pairs(n: int) -> float:
    """Seconds for n disabled detached ``begin``/``end`` span pairs."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(n):
        sid = tracer.begin("x")
        tracer.end(sid)
    return time.perf_counter() - start


def test_disabled_tracer_overhead_under_two_percent():
    spec = ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    )

    # Untraced wall-clock (the denominator), best-of-3 to damp noise.
    from repro.experiments.runner import run_spec

    timings = []
    for _ in range(3):
        start = time.perf_counter()
        run_spec(spec)
        timings.append(time.perf_counter() - start)
    untraced_s = min(timings)

    # How many hook invocations of each shape does the run perform?
    _result, tracer = run_traced(spec)
    rows = tracer.rows()
    n_rows = len(rows)
    n_span_rows = sum(1 for row in rows if row["kind"] == "span_begin")

    # Per-call disabled cost by shape, amortized over a large batch;
    # a span site is *either* a with-block or a begin/end pair, so
    # every span row is charged the more expensive of the two.
    batch = max(n_rows, 10_000)
    loop_s = _best_of(lambda: _time_empty_loop(batch)) / batch
    guard_s = max(0.0, _best_of(lambda: _time_guard_checks(batch)) / batch - loop_s)
    span_s = max(
        0.0,
        max(
            _best_of(lambda: _time_with_spans(batch)),
            _best_of(lambda: _time_begin_end_pairs(batch)),
        )
        / batch
        - loop_s,
    )
    noop_s_for_run = n_rows * guard_s + n_span_rows * span_s

    assert noop_s_for_run < 0.02 * untraced_s, (
        f"disabled tracer would add {noop_s_for_run:.4f}s over "
        f"{n_rows} hook sites ({n_span_rows} span rows) to a "
        f"{untraced_s:.4f}s run "
        f"({100 * noop_s_for_run / untraced_s:.2f}% > 2%)"
    )
