"""The disabled tracer must be effectively free (<2% of run wall-clock).

Direct A/B wall-clock comparison of two full runs is noisy in CI, so
the bound is established constructively:

1. run the spec once *with* tracing and count emitted rows -- an upper
   bound on how many tracer hook invocations the run performs (every
   guarded ``if tracer:`` site emits at most one row when enabled);
2. measure the per-call cost of the disabled-path operations
   (``bool(NULL_TRACER)`` guard, no-op ``event``/``end``/``span``);
3. assert that N_rows x cost_per_noop_call is under 2% of the measured
   untraced run wall-clock.

This is robust because each factor is measured, not assumed, and the
product over-counts: most hot-path sites never even reach the method
call when the tracer is falsy (the ``if tracer:`` guard short-circuits
to a single cheap ``bool``).
"""

import time

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.obs.export import run_profiled
from repro.obs.tracer import NULL_TRACER


def _time_noop_calls(n: int) -> float:
    """Wall-clock seconds for n disabled-tracer hook invocations."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(n):
        if tracer:  # the guard every instrumented hot path uses
            tracer.event("x")
        tracer.end(None)  # the unguarded call sites (end is cheapest)
    return time.perf_counter() - start


def test_disabled_tracer_overhead_under_two_percent():
    spec = ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    )

    # Untraced wall-clock (the denominator), best-of-2 to damp noise.
    from repro.experiments.runner import run_spec

    timings = []
    for _ in range(2):
        start = time.perf_counter()
        run_spec(spec)
        timings.append(time.perf_counter() - start)
    untraced_s = min(timings)

    # How many hook invocations does this run actually perform?
    n_rows = run_profiled(spec, jobs=1).summary.total_rows

    # Per-call disabled cost, amortized over a large batch.
    batch = max(n_rows, 10_000)
    noop_s_for_run = _time_noop_calls(batch) * (n_rows / batch)

    assert noop_s_for_run < 0.02 * untraced_s, (
        f"disabled tracer would add {noop_s_for_run:.4f}s over "
        f"{n_rows} hook sites to a {untraced_s:.4f}s run "
        f"({100 * noop_s_for_run / untraced_s:.2f}% > 2%)"
    )
