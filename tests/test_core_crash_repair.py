"""Crash-churn on the hierarchical structure: dangling links and repair."""

import random

import pytest

from repro.core.structure import HierarchicalStructure
from repro.net.server import CentralServer


@pytest.fixture()
def structure(tiny_dataset):
    server = CentralServer(tiny_dataset, capacity_bps=50e6, rng=random.Random(3))
    return HierarchicalStructure(
        tiny_dataset,
        server,
        random.Random(4),
        inner_link_limit=5,
        inter_link_limit=10,
        bootstrap_inner_links=3,
    )


def _always_alive(_node_id):
    return True


def _populate(structure, count=8, channel=0):
    for node in range(count):
        structure.enter_channel(node, channel, _always_alive)


class TestCrash:
    def test_crash_leaves_links_dangling(self, structure):
        _populate(structure)
        neighbors = structure.inner_neighbors(2)
        assert neighbors
        structure.crash(2)
        # Unlike leave(): survivors still hold their link to the dead node.
        for neighbor in neighbors:
            assert structure.inner.connected(neighbor, 2)
        assert structure.current_channel(2) is None
        assert 2 in structure.pending_repairs

    def test_crash_unregisters_from_tracker(self, structure):
        _populate(structure)
        structure.crash(2)
        assert 2 not in structure.server.channel_members(0)

    def test_invariants_tolerate_an_in_flight_repair(self, structure):
        _populate(structure)
        structure.crash(2)
        # A dangling link to a pending-repair node is not corruption.
        structure.assert_invariants()


class TestRepair:
    def test_repair_heals_survivors_and_clears_the_dead_node(self, structure):
        _populate(structure)
        neighbors = structure.inner_neighbors(2)
        structure.crash(2)
        repaired = structure.repair_crashed(2, lambda n: n != 2)
        assert repaired == len(neighbors)
        assert structure.link_count(2) == 0
        for neighbor in neighbors:
            assert not structure.inner.connected(neighbor, 2)
        assert 2 not in structure.pending_repairs
        structure.assert_invariants()

    def test_repair_respects_link_limits(self, structure):
        _populate(structure, count=12)
        structure.crash(2)
        structure.repair_crashed(2, lambda n: n != 2)
        for node in range(12):
            assert structure.inner.degree(node) <= 5

    def test_repair_is_idempotent(self, structure):
        _populate(structure)
        structure.crash(2)
        assert structure.repair_crashed(2, lambda n: n != 2) > 0
        assert structure.repair_crashed(2, lambda n: n != 2) == 0

    def test_repair_of_never_crashed_node_is_a_noop(self, structure):
        _populate(structure)
        links_before = structure.link_count(3)
        assert structure.repair_crashed(3, _always_alive) == 0
        assert structure.link_count(3) == links_before

    def test_rejoin_before_repair_makes_the_sweep_a_noop(self, structure):
        """A crashed node that returns inside its repair window is whole
        again -- the pending sweep must not tear its live links down."""
        _populate(structure)
        structure.crash(2)
        structure.rejoin(2, 0, _always_alive)
        assert 2 not in structure.pending_repairs
        links_after_rejoin = structure.link_count(2)
        assert links_after_rejoin > 0
        assert structure.repair_crashed(2, _always_alive) == 0
        assert structure.link_count(2) == links_after_rejoin
        structure.assert_invariants()
