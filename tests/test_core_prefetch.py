"""Unit tests for the channel-facilitated prefetcher."""

import random

import pytest

from repro.core.prefetch import ChannelPrefetcher
from repro.net.server import CentralServer


@pytest.fixture()
def prefetcher(tiny_dataset):
    server = CentralServer(tiny_dataset, capacity_bps=1e6, rng=random.Random(0))
    return ChannelPrefetcher(tiny_dataset, server, window=3)


def _largest_channel(dataset):
    return max(dataset.iter_channels(), key=lambda c: c.num_videos)


class TestChannelPrefetcher:
    def test_invalid_window_rejected(self, tiny_dataset):
        server = CentralServer(tiny_dataset, capacity_bps=1e6, rng=random.Random(0))
        with pytest.raises(ValueError):
            ChannelPrefetcher(tiny_dataset, server, window=-1)

    def test_candidates_ranked_by_popularity(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        watching = channel.video_ids[0]
        picks = prefetcher.candidates(channel.channel_id, set(), watching)
        views = [tiny_dataset.video_views(v) for v in picks]
        assert views == sorted(views, reverse=True)

    def test_candidates_respect_window(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        picks = prefetcher.candidates(channel.channel_id, set(), channel.video_ids[0])
        assert len(picks) <= 3

    def test_count_overrides_window(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        picks = prefetcher.candidates(
            channel.channel_id, set(), channel.video_ids[0], count=1
        )
        assert len(picks) <= 1

    def test_currently_watching_excluded(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        top = prefetcher.ranked_channel_videos(channel.channel_id)[0]
        picks = prefetcher.candidates(channel.channel_id, set(), top)
        assert top not in picks

    def test_already_have_excluded_and_backfilled(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        ranked = prefetcher.ranked_channel_videos(channel.channel_id)
        if len(ranked) < 6:
            pytest.skip("channel too small")
        have = set(ranked[:2])
        picks = prefetcher.candidates(channel.channel_id, have, ranked[-1])
        assert not set(picks) & have
        assert len(picks) == 3  # skips are backfilled from the feed

    def test_zero_count_returns_empty(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        assert prefetcher.candidates(
            channel.channel_id, set(), channel.video_ids[0], count=0
        ) == []

    def test_ranked_channel_videos_complete(self, prefetcher, tiny_dataset):
        channel = _largest_channel(tiny_dataset)
        ranked = prefetcher.ranked_channel_videos(channel.channel_id)
        assert sorted(ranked) == sorted(channel.video_ids)
