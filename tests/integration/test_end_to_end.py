"""Integration: the paper's qualitative results at small scale.

One shared :class:`EvaluationSuite` (session-scoped, smoke scale) runs
the five system variants; the tests assert the reproduction contract --
the orderings and shapes of Figs 16-18.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import EvaluationSuite
from repro.experiments.report import render_report, shape_checks
from repro.trace.synthesizer import TraceConfig


@pytest.fixture(scope="module")
def suite():
    # Slightly larger than smoke scale so overlays can form; still fast.
    config = SimulationConfig(
        num_nodes=300,
        trace=TraceConfig(
            num_users=300, num_channels=45, num_videos=1500,
            num_categories=8, seed=2014,
        ),
        sessions_per_user=6,
        videos_per_session=8,
        mean_off_time_s=300.0,
        seed=2014,
    )
    return EvaluationSuite(config=config)


class TestFig16PeerBandwidth:
    def test_socialtube_beats_nettube(self, suite):
        st = suite.result("SocialTube w/ PF").metrics
        nt = suite.result("NetTube w/ PF").metrics
        assert st.peer_bandwidth_p50 > nt.peer_bandwidth_p50

    def test_nettube_beats_pavod(self, suite):
        nt = suite.result("NetTube w/ PF").metrics
        pa = suite.result("PA-VoD").metrics
        assert nt.peer_bandwidth_p50 > pa.peer_bandwidth_p50

    def test_pavod_contributes_some_peer_bandwidth(self, suite):
        pa = suite.result("PA-VoD").metrics
        assert pa.peer_bandwidth_p99 > 0.1


class TestFig17StartupDelay:
    def test_pavod_worst(self, suite):
        pa = suite.result("PA-VoD").metrics
        others = [
            suite.result(label).metrics.startup_delay_ms_mean
            for label in (
                "SocialTube w/ PF", "SocialTube w/o PF",
                "NetTube w/ PF", "NetTube w/o PF",
            )
        ]
        assert pa.startup_delay_ms_mean > max(others)

    def test_socialtube_beats_nettube(self, suite):
        st = suite.result("SocialTube w/ PF").metrics
        nt = suite.result("NetTube w/ PF").metrics
        assert st.startup_delay_ms_mean < nt.startup_delay_ms_mean

    def test_prefetch_reduces_delay(self, suite):
        for system in ("SocialTube", "NetTube"):
            with_pf = suite.result(f"{system} w/ PF").metrics
            without = suite.result(f"{system} w/o PF").metrics
            assert with_pf.startup_delay_ms_mean < without.startup_delay_ms_mean

    def test_socialtube_prefetch_more_accurate(self, suite):
        st = suite.result("SocialTube w/ PF").metrics
        nt = suite.result("NetTube w/ PF").metrics
        assert st.prefetch_hit_fraction > nt.prefetch_hit_fraction


class TestFig18MaintenanceOverhead:
    def test_nettube_grows_within_session(self, suite):
        series = suite.result("NetTube w/ PF").metrics.overhead_series()
        assert series[-1][1] > 1.8 * max(series[0][1], 1.0)

    def test_socialtube_stays_flat(self, suite):
        series = suite.result("SocialTube w/ PF").metrics.overhead_series()
        assert series[-1][1] < 1.4 * max(series[0][1], 1.0)

    def test_socialtube_within_link_budget(self, suite):
        config = suite.config
        series = suite.result("SocialTube w/ PF").metrics.overhead_series()
        budget = config.inner_links + config.inter_links
        assert all(links <= budget + 0.5 for _idx, links in series)

    def test_nettube_ends_above_socialtube(self, suite):
        st = suite.result("SocialTube w/ PF").metrics.overhead_series()
        nt = suite.result("NetTube w/ PF").metrics.overhead_series()
        assert nt[-1][1] > st[-1][1]

    def test_pavod_zero_overhead(self, suite):
        series = suite.result("PA-VoD").metrics.overhead_series()
        assert all(links == 0.0 for _idx, links in series)


class TestShapeChecksAndReport:
    def test_all_shape_checks_pass(self, suite):
        checks = shape_checks(suite)
        failed = [name for name, ok in checks.items() if not ok]
        assert not failed, f"shape checks failed: {failed}"

    def test_figures_render(self, suite):
        figures = [
            suite.fig15_maintenance_model(),
            suite.fig16_peer_bandwidth(),
            suite.fig17_startup_delay(),
            suite.fig18_maintenance_overhead(),
            suite.table1_parameters(),
        ]
        text = render_report(figures)
        assert "Fig 16a" in text and "Fig 17a" in text and "Fig 18a" in text
        assert "Table I" in text

    def test_results_cached(self, suite):
        a = suite.result("PA-VoD")
        b = suite.result("PA-VoD")
        assert a is b
