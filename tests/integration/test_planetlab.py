"""Integration: the emulated PlanetLab testbed (Fig 16b/17b/18b regime)."""

import pytest

from repro.experiments.config import SimulationConfig
from repro.planetlab.testbed import PlanetLabTestbed


@pytest.fixture(scope="module")
def results():
    config = SimulationConfig.planetlab_scale(seed=8).scaled_sessions(6)
    testbed = PlanetLabTestbed(config=config)
    return testbed.compare_protocols()


class TestPlanetLabEnvironment:
    def test_all_protocols_complete(self, results):
        for result in results.values():
            assert result.metrics.num_requests == 250 * 6 * 10

    def test_socialtube_best_peer_bandwidth(self, results):
        st = results["socialtube"].metrics.peer_bandwidth_p50
        nt = results["nettube"].metrics.peer_bandwidth_p50
        pa = results["pavod"].metrics.peer_bandwidth_p50
        assert st > nt > pa

    def test_pavod_worst_startup(self, results):
        pa = results["pavod"].metrics.startup_delay_ms_mean
        others = [
            results[name].metrics.startup_delay_ms_mean
            for name in ("socialtube", "nettube")
        ]
        assert pa > max(others)

    def test_wan_delays_heavier_than_simulator(self, results):
        # Sanity: the WAN latency floor pushes peer-path startup well
        # above the simulator's ~10ms local-playback floor.
        st = results["socialtube"].metrics
        assert st.startup_delay_ms_mean > 50.0

    def test_socialtube_overhead_still_flat(self, results):
        series = results["socialtube"].metrics.overhead_series()
        assert series[-1][1] < 1.5 * max(series[0][1], 1.0)

    def test_failures_injected(self, results):
        # The WAN environment must actually exercise the failure path.
        from repro.experiments.config import planetlab_environment

        assert planetlab_environment().peer_failure_prob > 0
