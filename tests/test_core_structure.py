"""Unit tests for the two-level hierarchical structure."""

import random

import pytest

from repro.core.structure import HierarchicalStructure
from repro.net.server import CentralServer


@pytest.fixture()
def structure(tiny_dataset):
    server = CentralServer(tiny_dataset, capacity_bps=50e6, rng=random.Random(3))
    return HierarchicalStructure(
        tiny_dataset,
        server,
        random.Random(4),
        inner_link_limit=5,
        inter_link_limit=10,
        bootstrap_inner_links=3,
    )


def _always_alive(_node_id):
    return True


def _channels_by_category(dataset):
    """(channel_a, channel_b_same_cat, channel_c_other_cat)."""
    by_cat = {}
    for channel in dataset.iter_channels():
        by_cat.setdefault(channel.category_id, []).append(channel.channel_id)
    same = next(ids for ids in by_cat.values() if len(ids) >= 2)
    other = next(
        ids[0]
        for cat, ids in by_cat.items()
        if ids and ids[0] not in same[:2]
        and cat != next(iter(
            {dataset.category_of_channel(c) for c in same[:2]}
        ))
    )
    return same[0], same[1], other


class TestJoin:
    def test_first_node_joins_empty_channel(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        assert structure.current_channel(1) == 0
        assert structure.link_count(1) == 0  # nobody to link to yet

    def test_second_node_links_to_first(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        assert structure.inner.connected(1, 2)

    def test_reenter_same_channel_is_noop(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        links_before = structure.link_count(2)
        structure.enter_channel(2, 0, _always_alive)
        assert structure.link_count(2) == links_before

    def test_inner_links_capped(self, structure):
        for node in range(20):
            structure.enter_channel(node, 0, _always_alive)
        for node in range(20):
            assert structure.inner.degree(node) <= 5

    def test_registration_with_server(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        assert 1 in structure.server.channel_members(0)


class TestChannelSwitch:
    def test_same_category_demotes_inner_to_inter(self, structure, tiny_dataset):
        ch_a, ch_b, _ = _channels_by_category(tiny_dataset)
        structure.enter_channel(1, ch_a, _always_alive)
        structure.enter_channel(2, ch_a, _always_alive)
        assert structure.inner.connected(1, 2)
        structure.enter_channel(2, ch_b, _always_alive)
        # The old inner neighbor is now an inter neighbor.
        assert not structure.inner.connected(1, 2)
        assert structure.inter.connected(1, 2)

    def test_category_change_drops_links(self, structure, tiny_dataset):
        ch_a, _ch_b, ch_other = _channels_by_category(tiny_dataset)
        structure.enter_channel(1, ch_a, _always_alive)
        structure.enter_channel(2, ch_a, _always_alive)
        structure.enter_channel(2, ch_other, _always_alive)
        assert not structure.inner.connected(1, 2)
        assert not structure.inter.connected(1, 2)

    def test_switch_updates_server_registration(self, structure, tiny_dataset):
        ch_a, ch_b, _ = _channels_by_category(tiny_dataset)
        structure.enter_channel(1, ch_a, _always_alive)
        structure.enter_channel(1, ch_b, _always_alive)
        assert 1 not in structure.server.channel_members(ch_a)
        assert 1 in structure.server.channel_members(ch_b)


class TestLeaveAndRejoin:
    def test_leave_drops_all_links(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.leave(2)
        assert structure.link_count(2) == 0
        assert structure.current_channel(2) is None
        assert not structure.inner.connected(1, 2)

    def test_leave_unregisters_from_server(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.leave(1)
        assert 1 not in structure.server.channel_members(0)

    def test_rejoin_reconnects_previous_neighbors(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.leave(2)
        reconnected = structure.rejoin(2, 0, _always_alive)
        assert reconnected is True
        assert structure.inner.connected(1, 2)

    def test_rejoin_falls_back_when_neighbors_gone(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.leave(2)
        structure.leave(1)
        reconnected = structure.rejoin(2, 0, lambda n: n == 2)
        assert reconnected is False
        assert structure.current_channel(2) == 0


class TestAdoption:
    def test_adopt_inner_provider(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.enter_channel(3, 0, _always_alive)
        structure.inner.disconnect(1, 3)
        assert structure.adopt_inner_provider(1, 3) is True
        assert structure.inner.connected(1, 3)

    def test_adopt_self_rejected(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        assert structure.adopt_inner_provider(1, 1) is False
        assert structure.adopt_inter_provider(1, 1) is False

    def test_adopt_respects_inner_cap(self, structure):
        for node in range(1, 9):
            structure.enter_channel(node, 0, _always_alive)
        # Saturate node 1's inner links.
        for node in range(2, 9):
            if structure.inner.degree(1) < 5:
                structure.inner.connect(1, node, evict=True)
        assert structure.inner.degree(1) == 5
        structure.enter_channel(20, 0, _always_alive)
        structure.inner.disconnect(1, 20)
        assert structure.adopt_inner_provider(1, 20) is False


class TestMaintenance:
    def test_dead_neighbors_pruned(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.maintain(1, lambda n: n != 2)
        assert not structure.inner.connected(1, 2)

    def test_maintenance_tops_up_to_limit(self, structure):
        for node in range(12):
            structure.enter_channel(node, 0, _always_alive)
        structure.maintain(0, _always_alive)
        # Channel has 11 other members; maintenance should reach N_l.
        assert structure.inner.degree(0) == 5

    def test_maintenance_noop_when_not_in_channel(self, structure):
        structure.maintain(42, _always_alive)  # must not raise
        assert structure.link_count(42) == 0

    def test_drop_dead_neighbor(self, structure):
        structure.enter_channel(1, 0, _always_alive)
        structure.enter_channel(2, 0, _always_alive)
        structure.drop_dead_neighbor(1, 2)
        assert not structure.inner.connected(1, 2)


class TestValidation:
    def test_invalid_limits_rejected(self, tiny_dataset):
        server = CentralServer(tiny_dataset, capacity_bps=1e6, rng=random.Random(0))
        with pytest.raises(ValueError):
            HierarchicalStructure(tiny_dataset, server, random.Random(0),
                                  inner_link_limit=0)
        with pytest.raises(ValueError):
            HierarchicalStructure(tiny_dataset, server, random.Random(0),
                                  bootstrap_inner_links=-1)

    def test_link_count_sums_levels(self, structure, tiny_dataset):
        ch_a, ch_b, _ = _channels_by_category(tiny_dataset)
        structure.enter_channel(1, ch_a, _always_alive)
        structure.enter_channel(2, ch_b, _always_alive)
        structure.inter.connect(1, 2, evict=True)
        assert structure.link_count(1) == (
            structure.inner.degree(1) + structure.inter.degree(1)
        )
