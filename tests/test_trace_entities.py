"""Unit tests for the trace entities."""

import pytest

from repro.trace.entities import DEFAULT_CATEGORY_NAMES, Channel, User, Video


class TestVideo:
    def _video(self, upload_day=10, views=900):
        return Video(
            video_id=1, channel_id=0, category_id=0, upload_day=upload_day,
            length_seconds=120.0, views=views, favorites=9,
        )

    def test_view_frequency(self):
        video = self._video(upload_day=10, views=900)
        assert video.view_frequency(crawl_day=100) == pytest.approx(10.0)

    def test_view_frequency_same_day_counts_one_day(self):
        video = self._video(upload_day=100, views=50)
        assert video.view_frequency(crawl_day=100) == pytest.approx(50.0)


class TestChannel:
    def test_counts(self):
        channel = Channel(channel_id=0, owner_user_id=1, category_id=2)
        channel.video_ids.extend([1, 2, 3])
        channel.subscriber_ids.update({10, 11})
        channel.category_mix.update({2: 2, 4: 1})
        assert channel.num_videos == 3
        assert channel.num_subscribers == 2
        assert channel.num_interests == 2

    def test_total_views_delegated_to_dataset(self):
        channel = Channel(channel_id=0, owner_user_id=1, category_id=2)
        with pytest.raises(NotImplementedError):
            channel.total_views()


class TestUser:
    def test_interest_count(self):
        user = User(user_id=1, interest_ids={1, 2, 3})
        assert user.num_interests == 3

    def test_uploader_flag(self):
        assert User(user_id=1, owned_channel_id=5).is_uploader
        assert not User(user_id=1).is_uploader


class TestCategoryNames:
    def test_default_names_unique(self):
        assert len(DEFAULT_CATEGORY_NAMES) == len(set(DEFAULT_CATEGORY_NAMES))

    def test_paper_examples_present(self):
        # Fig 1 names these YouTube categories explicitly.
        for name in ("Gaming", "Sports", "Comedy", "Science & Technology"):
            assert name in DEFAULT_CATEGORY_NAMES
