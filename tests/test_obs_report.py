"""Dashboard rendering: deterministic, self-contained, well-formed.

The dashboard is a CI artifact diffed byte-for-byte across worker
layouts, so rendering must be a pure function of the
:class:`DashboardRun` list.  Structure checks keep the output honest:
inline SVG only, no external resources, legends exactly when two or
more series share a plot, and the scalar table carrying the playback
continuity columns.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.spec import ExperimentSpec
from repro.obs.report import (
    CHART_METRICS,
    SCALAR_COLUMNS,
    DashboardRun,
    _fmt,
    _nice_ceiling,
    collect_dashboard_runs,
    dashboard_filename,
    dashboard_run,
    render_dashboard,
    write_dashboard,
)
from repro.obs.timeseries import DEFAULT_WINDOW_S


@pytest.fixture(scope="module")
def specs():
    config = SimulationConfig.smoke_scale()
    return [
        ExperimentSpec(protocol="socialtube", config=config),
        ExperimentSpec(protocol="pavod", config=config),
    ]


@pytest.fixture(scope="module")
def runs(specs):
    return collect_dashboard_runs(specs, window_s=DEFAULT_WINDOW_S, jobs=1)


@pytest.fixture(scope="module")
def html(runs):
    return render_dashboard(runs, window_s=DEFAULT_WINDOW_S)


def test_rendering_is_deterministic(runs, html):
    assert render_dashboard(runs, window_s=DEFAULT_WINDOW_S) == html


def test_pooled_collection_renders_identically(specs, html):
    pooled = collect_dashboard_runs(specs, window_s=DEFAULT_WINDOW_S, jobs=2)
    assert render_dashboard(pooled, window_s=DEFAULT_WINDOW_S) == html


def test_dashboard_is_self_contained(html):
    """Zero runtime deps: no scripts, no external fetches of any kind."""
    lowered = html.lower()
    assert lowered.startswith("<!doctype html>")
    assert "<script" not in lowered
    assert 'src="http' not in lowered and "href=\"http" not in lowered
    assert "@import" not in lowered and "url(" not in lowered


def test_every_chart_metric_has_a_card(html):
    for metric, _title, _hint in CHART_METRICS:
        assert f'id="m-{metric}"' in html
    assert html.count("<svg") >= len(CHART_METRICS)


def test_scalar_table_has_continuity_columns(html, runs):
    names = [name for name, _label in SCALAR_COLUMNS]
    assert "mean_continuity_index" in names
    assert "stall_fraction" in names
    assert "mean_stall_ms" in names
    for run in runs:
        assert run.protocol in html


def test_legend_present_only_for_multi_series(runs):
    both = render_dashboard(runs, window_s=DEFAULT_WINDOW_S)
    solo = render_dashboard(runs[:1], window_s=DEFAULT_WINDOW_S)
    assert 'class="legend"' in both
    # one protocol, one series per metric chart: title names it, no
    # legend box (cluster charts may still be multi-series)
    metric_chart = solo.split('id="m-server_share"')[1].split('class="card"')[0]
    assert 'class="legend"' not in metric_chart


def test_polyline_points_stay_in_viewbox(html):
    import re

    for points in re.findall(r'points="([^"]+)"', html):
        for pair in points.split():
            x, y = pair.split(",")
            assert 0.0 <= float(x) <= 560.0
            assert 0.0 <= float(y) <= 240.0


def test_dashboard_filename_keys_protocols_and_hash(runs):
    name = dashboard_filename(runs)
    assert name.startswith("dashboard_socialtube_vs_pavod_")
    assert name.endswith(".html")
    assert runs[0].content_hash[:12] in name


def test_write_dashboard_roundtrip(tmp_path, html):
    path = write_dashboard(str(tmp_path / "sub" / "dash.html"), html)
    with open(path, "r", encoding="utf-8") as handle:
        assert handle.read() == html


def test_dashboard_run_carries_identity(specs):
    run = dashboard_run(specs[0], window_s=DEFAULT_WINDOW_S)
    assert isinstance(run, DashboardRun)
    assert run.protocol == "socialtube"
    assert run.content_hash == specs[0].content_hash()
    assert run.table.num_windows > 0
    assert set(run.scalars) == {name for name, _label in SCALAR_COLUMNS}


def test_fmt_is_human_scale():
    assert _fmt(1234567) == "1,234,567"
    assert _fmt(0.1234) == "0.123"
    assert _fmt(42.25) == "42.2"
    assert _fmt(1234.5) == "1,234"


def test_nice_ceiling_snaps_up():
    assert _nice_ceiling(0.0) == 1.0
    assert _nice_ceiling(3.2) == 5.0
    assert _nice_ceiling(49.0) == 50.0
    assert _nice_ceiling(51.0) == 100.0
    assert _nice_ceiling(0.7) == 1.0
