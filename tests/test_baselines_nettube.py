"""Unit tests for the NetTube baseline."""

import pytest

from helpers import make_protocol
from repro.baselines.nettube import NetTubeProtocol
from repro.net.message import ChunkSource


@pytest.fixture()
def proto(tiny_dataset):
    protocol, _server = make_protocol(NetTubeProtocol, tiny_dataset)
    return protocol


VIDEO = 0  # any video id works; channel 0's first video is id 0 by construction


class TestOverlayMembership:
    def test_watching_joins_video_overlay(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert 1 in proto.server.video_overlay_members(VIDEO)

    def test_member_stays_after_watching(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        proto.on_watch_finished(1, VIDEO)
        assert 1 in proto.server.video_overlay_members(VIDEO)

    def test_session_end_leaves_all_overlays(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, 0)
        proto.on_watch_started(1, 1)
        proto.on_session_end(1)
        assert 1 not in proto.server.video_overlay_members(0)
        assert 1 not in proto.server.video_overlay_members(1)
        assert proto.link_count(1) == 0

    def test_links_accumulate_per_video(self, proto):
        # Two nodes watch the same growing set of videos: each new video
        # adds an overlay and links within it.
        proto.on_session_start(1)
        proto.on_session_start(2)
        counts = []
        for video in range(4):
            proto.on_watch_started(1, video)
            proto.on_watch_started(2, video)
            counts.append(proto.link_count(2))
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_redundant_links_counted_per_overlay(self, proto):
        # The same peer in two overlays costs two links -- the
        # redundancy the paper criticises.
        proto.on_session_start(1)
        proto.on_session_start(2)
        for video in (0, 1):
            proto.on_watch_started(1, video)
            proto.on_watch_started(2, video)
        assert proto.link_count(1) == 2


class TestLocate:
    def test_cache_hit(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.locate(1, VIDEO).from_cache

    def test_first_request_redirected_by_tracker(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, VIDEO)
        # Node 1 has no memberships yet: the server redirects it to the
        # video's overlay, where node 2 provides.
        result = proto.locate(1, VIDEO)
        assert result.from_peer
        assert result.provider_id == 2

    def test_first_request_server_serves_when_overlay_empty(self, proto):
        proto.on_session_start(1)
        assert proto.locate(1, VIDEO).from_server

    def test_subsequent_miss_resorts_to_server(self, proto, tiny_dataset):
        # After joining an overlay, a miss is served by the server, NOT
        # redirected ("the user resorts to the server").
        proto.on_session_start(1)
        proto.on_watch_started(1, 0)
        # Another node holds video 50 but is in an unrelated overlay.
        proto.on_session_start(2)
        proto.on_watch_started(2, 50)
        result = proto.locate(1, 50)
        assert result.from_server

    def test_two_hop_search_finds_neighbor_cache(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, 0)
        proto.on_watch_started(2, 7)   # node 2 caches video 7
        proto.on_watch_started(1, 0)   # node 1 joins overlay 0, links to 2
        result = proto.locate(1, 7)
        assert result.from_peer
        assert result.provider_id == 2


class TestPrefetch:
    def test_prefetch_from_neighbor_caches(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        for video in (0, 5, 9):
            proto.on_watch_started(2, video)
        proto.on_watch_started(1, 0)
        picks = proto.select_prefetch(1, 0, 3)
        assert picks
        assert set(picks) <= {5, 9}  # only neighbors' cached videos

    def test_prefetch_excludes_own_cache(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        for video in (0, 5):
            proto.on_watch_started(2, video)
        proto.on_watch_started(1, 0)
        proto.state(1).cache_video(5)
        assert 5 not in proto.select_prefetch(1, 0, 3)

    def test_prefetch_source(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, 0)
        proto.on_watch_started(2, 5)
        proto.on_watch_started(1, 0)
        assert proto.prefetch_source(1, 5) is ChunkSource.PREFETCH_PEER
        assert proto.prefetch_source(1, 123) is ChunkSource.PREFETCH_SERVER

    def test_prefetch_disabled(self, tiny_dataset):
        protocol, _ = make_protocol(
            NetTubeProtocol, tiny_dataset, enable_prefetch=False
        )
        protocol.on_session_start(1)
        protocol.on_watch_started(1, 0)
        assert protocol.select_prefetch(1, 0, 3) == []


class TestMaintenance:
    def test_dead_links_pruned(self, proto):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, 0)
        proto.on_watch_started(1, 0)
        assert proto.link_count(1) >= 1
        # Node 2 dies abruptly (no graceful leave).
        proto.state(2).online = False
        proto.on_maintenance(1)
        assert proto._overlay(0).degree(1) == 0

    def test_invalid_links_per_overlay_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_protocol(NetTubeProtocol, tiny_dataset, links_per_overlay=0)
