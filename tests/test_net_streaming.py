"""Unit tests for the chunk-level streaming playback model."""

import pytest

from repro.net.streaming import (
    PlaybackReport,
    StreamingError,
    simulate_playback,
    simulate_resume,
    stall_free_rate,
)

BITRATE = 320_000.0


def _play(rate, length=200.0, chunks=20, buffer_s=2.0, prefetched=False):
    return simulate_playback(
        video_length_s=length,
        bitrate_bps=BITRATE,
        transfer_rate_bps=rate,
        chunks=chunks,
        startup_buffer_s=buffer_s,
        prefetched_first_chunk=prefetched,
    )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(video_length_s=0),
            dict(bitrate_bps=0),
            dict(transfer_rate_bps=0),
            dict(chunks=0),
            dict(startup_buffer_s=-1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(
            video_length_s=100.0,
            bitrate_bps=BITRATE,
            transfer_rate_bps=BITRATE,
            chunks=10,
            startup_buffer_s=2.0,
        )
        base.update(kwargs)
        with pytest.raises(StreamingError):
            simulate_playback(**base)


class TestSmoothPlayback:
    def test_fast_transfer_never_stalls(self):
        report = _play(rate=2 * BITRATE)
        assert report.smooth
        assert report.total_stall_s == 0.0
        assert report.continuity_index == 1.0

    def test_exact_bitrate_never_stalls(self):
        # At exactly the bitrate, each chunk arrives exactly when needed.
        report = _play(rate=BITRATE)
        assert report.smooth

    def test_startup_scales_with_rate(self):
        fast = _play(rate=4 * BITRATE)
        slow = _play(rate=1 * BITRATE)
        assert fast.startup_delay_s < slow.startup_delay_s


class TestStalls:
    def test_slow_transfer_stalls(self):
        report = _play(rate=0.5 * BITRATE)
        assert report.stall_count > 0
        assert report.total_stall_s > 0
        assert report.continuity_index < 1.0

    def test_half_rate_doubles_wall_clock(self):
        # At rate r = bitrate/2, the transfer takes 2x the video length;
        # total stall ~= video length minus what the startup buffered.
        report = _play(rate=0.5 * BITRATE, length=200.0)
        wall = report.startup_delay_s + report.playback_duration_s + report.total_stall_s
        assert wall == pytest.approx(400.0, rel=0.05)

    def test_continuity_monotone_in_rate(self):
        rates = [0.3, 0.5, 0.8, 1.0, 2.0]
        continuity = [_play(rate=f * BITRATE).continuity_index for f in rates]
        assert continuity == sorted(continuity)

    def test_stall_durations_sum(self):
        report = _play(rate=0.4 * BITRATE)
        assert sum(report.stalls) == pytest.approx(report.total_stall_s)


class TestPrefetchedFirstChunk:
    def test_prefetch_zeroes_startup(self):
        report = _play(rate=2 * BITRATE, prefetched=True)
        assert report.startup_delay_s == 0.0

    def test_prefetch_does_not_prevent_later_stalls(self):
        report = _play(rate=0.4 * BITRATE, prefetched=True)
        assert report.stall_count > 0

    def test_prefetch_smooth_at_adequate_rate(self):
        report = _play(rate=2 * BITRATE, prefetched=True)
        assert report.smooth


class TestPrefetchedStartupPinned:
    """Pins the prefetched branch: startup is exactly 0.0 and the
    remaining chunks still stream from t=0 (the dead buffered_target
    computation was deleted; behaviour must not move)."""

    def test_startup_exactly_zero_regardless_of_buffer(self):
        for buffer_s in (0.0, 2.0, 50.0, 1e6):
            report = _play(rate=2 * BITRATE, buffer_s=buffer_s, prefetched=True)
            assert report.startup_delay_s == 0.0

    def test_arrival_schedule_shifts_by_exactly_one_chunk(self):
        # Prefetching makes chunk 0 free and pulls every later arrival
        # forward by one chunk-transfer time; total waiting (startup +
        # stalls) drops by exactly that amount and nothing else moves.
        rate = 0.5 * BITRATE
        plain = _play(rate=rate)
        prefetched = _play(rate=rate, prefetched=True)
        chunk_transfer_s = (BITRATE * 10.0) / rate  # 20 chunks of a 200s video
        assert prefetched.total_stall_s == pytest.approx(
            plain.startup_delay_s + plain.total_stall_s - chunk_transfer_s,
            rel=1e-9,
        )


class TestResume:
    def _resume(self, rate=2 * BITRATE, chunks_done=10, position=100.0, gap=5.0):
        return simulate_resume(
            video_length_s=200.0,
            bitrate_bps=BITRATE,
            transfer_rate_bps=rate,
            chunks=20,
            chunks_done=chunks_done,
            playback_position_s=position,
            resume_gap_s=gap,
        )

    def test_completion_always_exceeds_the_gap(self):
        report = self._resume(gap=7.0)
        assert report.completion_s > 7.0

    def test_fast_resume_stalls_only_for_the_gap(self):
        # Playhead at the first missing chunk: the failover gap itself is
        # the stall; a fast new provider adds nothing.
        report = self._resume(rate=10 * BITRATE, chunks_done=10, position=100.0)
        assert report.stall_count == 1
        assert report.total_stall_s == pytest.approx(
            5.0 + (BITRATE * 10.0) / (10 * BITRATE), rel=1e-9
        )

    def test_local_chunks_play_without_stalling(self):
        # Playhead well behind the transfer edge: the already-delivered
        # chunks cover the failover gap entirely.
        report = self._resume(rate=2 * BITRATE, chunks_done=15, position=10.0, gap=5.0)
        assert report.total_stall_s == 0.0

    def test_slow_new_provider_keeps_stalling(self):
        report = self._resume(rate=0.5 * BITRATE, chunks_done=10, position=100.0)
        assert report.stall_count > 1

    def test_completion_covers_remaining_playback(self):
        report = self._resume(rate=2 * BITRATE, chunks_done=10, position=100.0)
        # 100s of video remain; completion includes them plus all stalls.
        assert report.completion_s == pytest.approx(
            100.0 + report.total_stall_s, rel=1e-9
        )

    def test_stall_durations_sum(self):
        report = self._resume(rate=0.5 * BITRATE)
        assert sum(report.stalls) == pytest.approx(report.total_stall_s)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(chunks_done=20),  # nothing left to resume
            dict(chunks_done=-1),
            dict(gap=-1.0),
            dict(rate=0.0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(StreamingError):
            self._resume(**kwargs)


class TestHelpers:
    def test_stall_free_rate(self):
        assert stall_free_rate(BITRATE) == BITRATE
        assert stall_free_rate(BITRATE, 1.5) == 1.5 * BITRATE
        with pytest.raises(StreamingError):
            stall_free_rate(0)
        with pytest.raises(StreamingError):
            stall_free_rate(BITRATE, 0.5)

    def test_report_continuity_degenerate(self):
        report = PlaybackReport(
            startup_delay_s=0.0, stall_count=0, total_stall_s=0.0,
            playback_duration_s=0.0,
        )
        assert report.continuity_index == 1.0
