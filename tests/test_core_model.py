"""Unit tests for the paper's analytical models (Fig 15, prefetch accuracy)."""

import math

import pytest

from repro.core.model import (
    fig15_series,
    harmonic_number,
    nettube_maintenance_overhead,
    overhead_crossover,
    prefetch_accuracy,
    socialtube_maintenance_overhead,
    zipf_top_k_mass,
)


class TestMaintenanceOverhead:
    def test_socialtube_formula(self):
        assert socialtube_maintenance_overhead(5000, 250000) == pytest.approx(
            math.log(5000) + math.log(250000)
        )

    def test_nettube_formula(self):
        assert nettube_maintenance_overhead(10, 500) == pytest.approx(
            10 * math.log(500)
        )

    def test_nettube_zero_videos(self):
        assert nettube_maintenance_overhead(0, 500) == 0.0

    def test_invalid_populations_rejected(self):
        with pytest.raises(ValueError):
            socialtube_maintenance_overhead(0, 10)
        with pytest.raises(ValueError):
            nettube_maintenance_overhead(-1, 10)
        with pytest.raises(ValueError):
            nettube_maintenance_overhead(1, 0)

    def test_fig15_socialtube_constant(self):
        socialtube, _ = fig15_series(50)
        values = {v for _m, v in socialtube}
        assert len(values) == 1

    def test_fig15_nettube_linear(self):
        _, nettube = fig15_series(50)
        diffs = [b[1] - a[1] for a, b in zip(nettube, nettube[1:])]
        assert all(d == pytest.approx(diffs[0]) for d in diffs)

    def test_fig15_crossover(self):
        # NetTube is cheaper for small m, costlier past the crossover --
        # the figure's takeaway.
        crossover = overhead_crossover()
        socialtube, nettube = fig15_series(50)
        below = int(crossover)
        above = below + 1
        assert nettube[below - 1][1] < socialtube[below - 1][1]
        assert nettube[above][1] > socialtube[above][1]


class TestPrefetchAccuracy:
    def test_harmonic_number(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)
        with pytest.raises(ValueError):
            harmonic_number(0)

    def test_paper_single_prefetch_number(self):
        # "For a channel with 25 videos, the probability that a single
        # prefetch is accurate equals 26.2%."
        assert prefetch_accuracy(25, 1) == pytest.approx(0.262, abs=0.001)

    def test_paper_three_four_prefetch_number(self):
        # "the prefetch accuracy rises to 54.6%" (3-4 prefetches).
        assert prefetch_accuracy(25, 4) == pytest.approx(0.546, abs=0.001)

    def test_zero_prefetch_zero_accuracy(self):
        assert prefetch_accuracy(25, 0) == 0.0

    def test_prefetch_all_videos_certain(self):
        assert prefetch_accuracy(10, 10) == pytest.approx(1.0)

    def test_k_clamped_to_channel_size(self):
        assert prefetch_accuracy(10, 100) == pytest.approx(1.0)

    def test_monotone_in_k(self):
        values = [prefetch_accuracy(25, k) for k in range(0, 26)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_diminishing_returns(self):
        gain_first = prefetch_accuracy(25, 1) - prefetch_accuracy(25, 0)
        gain_fifth = prefetch_accuracy(25, 5) - prefetch_accuracy(25, 4)
        assert gain_first > gain_fifth

    def test_general_exponent(self):
        # s=0 -> uniform: top-k mass is k/N.
        assert zipf_top_k_mass(10, 3, exponent=0.0) == pytest.approx(0.3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            zipf_top_k_mass(0, 1)
        with pytest.raises(ValueError):
            zipf_top_k_mass(5, -1)
