"""Unit tests for the CSV/JSON figure exporters."""

import csv
import json
import os

import pytest

from repro.analysis.figures import FigureSeries
from repro.experiments.export import (
    _slug,
    export_all,
    export_evaluation_figure,
    export_figure_series,
)
from repro.experiments.figures import EvaluationFigure, FigureRow


@pytest.fixture()
def trace_figure():
    return FigureSeries(
        figure="Fig 7",
        title="views per video",
        series={"cdf": [(1.0, 0.5), (10.0, 1.0)]},
        notes={"p50": 1.0},
    )


@pytest.fixture()
def eval_figure():
    return EvaluationFigure(
        figure="Fig 16a",
        title="peer bandwidth",
        rows=[
            FigureRow(label="SocialTube", values={"p1": 0.5, "p50": 0.8}),
            FigureRow(label="PA-VoD", values={"p1": 0.2, "p50": 0.5}),
        ],
        notes=["demo"],
    )


class TestSlug:
    def test_figure_ids(self):
        assert _slug("Fig 16a") == "fig_16a"
        assert _slug("Table I") == "table_i"

    def test_strips_specials(self):
        assert _slug("a/b:c") == "a_b_c"


class TestFigureSeriesExport:
    def test_writes_csv_and_json(self, trace_figure, tmp_path):
        written = export_figure_series(trace_figure, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        assert names == {"fig_7_cdf.csv", "fig_7.json"}

    def test_csv_contents_round_trip(self, trace_figure, tmp_path):
        export_figure_series(trace_figure, str(tmp_path))
        with open(tmp_path / "fig_7_cdf.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["x", "y"]
        assert [tuple(map(float, r)) for r in rows[1:]] == [(1.0, 0.5), (10.0, 1.0)]

    def test_json_metadata(self, trace_figure, tmp_path):
        export_figure_series(trace_figure, str(tmp_path))
        meta = json.loads((tmp_path / "fig_7.json").read_text())
        assert meta["figure"] == "Fig 7"
        assert meta["notes"]["p50"] == 1.0


class TestEvaluationFigureExport:
    def test_writes_csv_and_json(self, eval_figure, tmp_path):
        written = export_evaluation_figure(eval_figure, str(tmp_path))
        names = {os.path.basename(p) for p in written}
        assert names == {"fig_16a.csv", "fig_16a.json"}

    def test_csv_has_label_column(self, eval_figure, tmp_path):
        export_evaluation_figure(eval_figure, str(tmp_path))
        with open(tmp_path / "fig_16a.csv", newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["label", "p1", "p50"]
        assert rows[1][0] == "SocialTube"
        assert float(rows[1][2]) == 0.8

    def test_json_round_trip(self, eval_figure, tmp_path):
        export_evaluation_figure(eval_figure, str(tmp_path))
        meta = json.loads((tmp_path / "fig_16a.json").read_text())
        assert meta["rows"][1]["label"] == "PA-VoD"


class TestExportAll:
    def test_bundle(self, trace_figure, eval_figure, tmp_path):
        written = export_all([trace_figure], [eval_figure], str(tmp_path))
        assert len(written) == 4
        assert all(os.path.exists(p) for p in written)

    def test_real_trace_figures_exportable(self, tiny_dataset, tmp_path):
        from repro.analysis.figures import TraceAnalysis

        analysis = TraceAnalysis(tiny_dataset)
        written = export_all(analysis.all_figures(), [], str(tmp_path))
        assert len(written) > 10
