"""Tests for the event-driven flood and its agreement with the
synchronous traversal (the DESIGN.md §5 approximation validation)."""

import random

import pytest

from repro.net.latency import UniformLatencyModel
from repro.overlay.async_flood import AsyncFloodSearch
from repro.overlay.flood import ttl_flood
from repro.sim.engine import EventScheduler


def _line_graph(n):
    adjacency = {i: [] for i in range(n)}
    for i in range(n - 1):
        adjacency[i].append(i + 1)
        adjacency[i + 1].append(i)
    return adjacency


def _run_async(adjacency, requester, holders, ttl, timeout=10.0, latency=None):
    scheduler = EventScheduler()
    latency = latency or UniformLatencyModel(random.Random(1), low=0.05, high=0.05)
    search = AsyncFloodSearch(
        scheduler,
        latency,
        neighbors_of=adjacency.__getitem__,
        is_holder=lambda n: n in holders,
    )
    outcomes = []
    search.search(requester, adjacency[requester], ttl, outcomes.append,
                  timeout=timeout)
    scheduler.run()
    assert len(outcomes) == 1  # completion fires exactly once
    return outcomes[0]


class TestAsyncFlood:
    def test_invalid_parameters_rejected(self):
        scheduler = EventScheduler()
        latency = UniformLatencyModel(random.Random(1))
        search = AsyncFloodSearch(scheduler, latency, lambda n: [], lambda n: False)
        with pytest.raises(ValueError):
            search.search(0, [], ttl=0, on_complete=lambda o: None)
        with pytest.raises(ValueError):
            search.search(0, [], ttl=1, on_complete=lambda o: None, timeout=0)

    def test_direct_neighbor_found(self):
        adj = _line_graph(3)
        outcome = _run_async(adj, 0, {1}, ttl=2)
        assert outcome.result.found == 1
        assert outcome.result.hops == 1
        # Fixed 50ms one-way latency: request + response = 100ms.
        assert outcome.response_delay == pytest.approx(0.10)

    def test_two_hop_delay_is_path_sum(self):
        adj = _line_graph(4)
        outcome = _run_async(adj, 0, {2}, ttl=2)
        assert outcome.result.found == 2
        # Two forwarding hops + one response hop at 50ms each.
        assert outcome.response_delay == pytest.approx(0.15)

    def test_failure_times_out(self):
        adj = _line_graph(6)
        outcome = _run_async(adj, 0, {5}, ttl=2, timeout=1.0)
        assert not outcome.result.success
        assert outcome.response_delay is None

    def test_timeout_cancelled_on_success(self):
        adj = _line_graph(3)
        scheduler = EventScheduler()
        latency = UniformLatencyModel(random.Random(1), low=0.01, high=0.01)
        search = AsyncFloodSearch(
            scheduler, latency, adj.__getitem__, lambda n: n == 1
        )
        outcomes = []
        search.search(0, adj[0], 2, outcomes.append, timeout=100.0)
        scheduler.run()
        assert len(outcomes) == 1
        # The heap drained: the timeout did not linger until t=100.
        assert scheduler.now < 1.0

    def test_messages_counted(self):
        adj = {0: [1, 2], 1: [0], 2: [0]}
        outcome = _run_async(adj, 0, set(), ttl=2, timeout=1.0)
        assert outcome.messages_sent == 2


class TestAgreementWithSyncTraversal:
    """On static graphs with homogeneous latency, async == sync."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_agreement(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 14)
        adjacency = {i: set() for i in range(n)}
        for _ in range(3 * n):
            a, b = rng.randrange(n), rng.randrange(n)
            if a != b:
                adjacency[a].add(b)
                adjacency[b].add(a)
        adjacency = {k: sorted(v) for k, v in adjacency.items()}
        holders = {i for i in range(n) if rng.random() < 0.25}
        requester = rng.randrange(n)
        ttl = rng.randint(1, 3)

        sync = ttl_flood(
            requester,
            adjacency[requester],
            adjacency.__getitem__,
            lambda node: node in holders,
            ttl=ttl,
        )
        outcome = _run_async(adjacency, requester, holders, ttl=ttl)

        assert sync.success == outcome.result.success
        if sync.success:
            # Homogeneous latency: earliest response = fewest hops.
            assert outcome.result.hops == sync.hops
            assert outcome.result.found in holders
            expected_delay = 0.05 * (sync.hops + 1)
            assert outcome.response_delay == pytest.approx(expected_delay)
