"""Tier-1 gate: the shipped source tree must be lint-clean.

This is the PR's self-policing mechanism -- any rule violation that
lands in ``src/repro`` from now on fails the suite with the offending
file:line:rule rows in the assertion message.  The checked-in baseline
(``tools/lint_baseline.json``) is applied exactly as CI applies it, so
the gate here and the CI lint job agree on what "clean" means.
"""

import os

from repro.lint.baseline import discover_baseline_path, load_baseline
from repro.lint.dataflow import MODULE_DECL_PACKAGES
from repro.lint.runner import default_lint_root, lint_paths


def _baselined_report():
    root = default_lint_root()
    baseline = load_baseline(discover_baseline_path(root))
    return lint_paths([root], baseline=baseline), baseline


def test_source_tree_is_lint_clean():
    report, _baseline = _baselined_report()
    # Sanity: the walk really covered the package, not an empty dir.
    assert report.files_checked > 40
    details = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"lint findings in the source tree:\n{details}"


def test_no_baselined_high_severity_findings():
    """The baseline is for burning down medium/low debt only; a high-
    severity finding may never be baselined away."""
    root = default_lint_root()
    report = lint_paths([root], baseline=None)
    high = [f for f in report.findings if f.severity == "high"]
    details = "\n".join(f.render() for f in high)
    assert not high, f"high-severity findings (baselining not allowed):\n{details}"


def test_baseline_has_no_stale_entries():
    report, baseline = _baselined_report()
    assert report.stale_baseline == [], (
        "baseline entries match no current finding; remove them from "
        f"{baseline.path}: {report.stale_baseline}"
    )


def test_program_pass_ran_over_the_tree():
    report, _baseline = _baselined_report()
    stats = report.program_stats
    assert stats is not None
    assert stats["modules"] > 40
    assert stats["call_edges"] > 100
    assert stats["event_roots"] > 0, "no EventScheduler callbacks found"
    assert stats["event_reachable"] >= stats["event_roots"]
    assert stats["stream_sites"] > 5, "RngStreams substream sites not indexed"


def test_pdes_packages_carry_module_shard_decls():
    """Acceptance: every module in sim/, overlay/, net/, core/ declares
    instance-state ownership with ``# shard: module=<class>``."""
    root = default_lint_root()
    missing = []
    for package in MODULE_DECL_PACKAGES:
        pkg_dir = os.path.join(root, package)
        for dirpath, _dirnames, filenames in os.walk(pkg_dir):
            for name in sorted(filenames):
                if not name.endswith(".py") or name == "__init__.py":
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    if "# shard: module=" not in handle.read():
                        missing.append(path)
    assert not missing, f"modules without a shard module declaration: {missing}"
