"""Tier-1 gate: the shipped source tree must be lint-clean.

This is the PR's self-policing mechanism -- any rule violation that
lands in ``src/repro`` from now on fails the suite with the offending
file:line:rule rows in the assertion message.
"""

from repro.lint.runner import default_lint_root, lint_paths


def test_source_tree_is_lint_clean():
    report = lint_paths([default_lint_root()])
    # Sanity: the walk really covered the package, not an empty dir.
    assert report.files_checked > 40
    details = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"lint findings in the source tree:\n{details}"
