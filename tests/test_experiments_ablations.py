"""Unit tests for the ablation sweeps (the paper's future-work study)."""

import pytest

from repro.experiments.ablations import (
    AblationPoint,
    AblationResult,
    churn_sweep,
    link_budget_sweep,
    ttl_sweep,
)
from repro.experiments.config import SimulationConfig
from repro.trace.synthesizer import TraceConfig


MICRO = SimulationConfig(
    num_nodes=60,
    trace=TraceConfig(num_users=60, num_channels=12, num_videos=300,
                      num_categories=4, seed=21),
    sessions_per_user=2,
    videos_per_session=4,
    mean_off_time_s=120.0,
    seed=21,
)


def _point(label, bw, links):
    return AblationPoint(
        label=label,
        parameters={},
        peer_bandwidth_p50=bw,
        startup_delay_ms_mean=100.0,
        mean_link_overhead=links,
        server_fallback_fraction=0.1,
        mean_peers_contacted=5.0,
    )


class TestAblationResult:
    def test_best_tradeoff_maximises_ratio(self):
        result = AblationResult(
            name="x",
            points=[_point("a", 0.5, 4.0), _point("b", 0.6, 20.0)],
        )
        assert result.best_tradeoff().label == "a"

    def test_best_tradeoff_empty(self):
        assert AblationResult(name="x").best_tradeoff() is None

    def test_render_rows(self):
        result = AblationResult(name="demo", points=[_point("a", 0.5, 4.0)])
        rows = result.render_rows()
        assert rows[0] == "Ablation: demo"
        assert any("best availability" in row for row in rows)


class TestSweeps:
    def test_link_budget_sweep_runs(self):
        result = link_budget_sweep(MICRO, budgets=((2, 4), (5, 10)))
        assert len(result.points) == 2
        assert result.points[0].label == "N_l=2, N_h=4"
        # Larger budgets cannot *reduce* realised link overhead.
        assert (
            result.points[1].mean_link_overhead
            >= result.points[0].mean_link_overhead - 0.5
        )

    def test_link_overhead_bounded_by_budget(self):
        result = link_budget_sweep(MICRO, budgets=((2, 4),))
        assert result.points[0].mean_link_overhead <= 2 + 4 + 0.5

    def test_ttl_sweep_runs(self):
        result = ttl_sweep(MICRO, ttls=(1, 3))
        assert [p.label for p in result.points] == ["TTL=1", "TTL=3"]
        # Deeper floods contact at least as many peers per query.
        assert (
            result.points[1].mean_peers_contacted
            >= result.points[0].mean_peers_contacted - 0.5
        )

    def test_churn_sweep_runs(self):
        result = churn_sweep(MICRO, mean_off_times=(30.0, 600.0))
        assert len(result.points) == 2
        for point in result.points:
            assert 0.0 <= point.peer_bandwidth_p50 <= 1.0

    def test_sweep_metrics_well_formed(self):
        result = ttl_sweep(MICRO, ttls=(2,))
        point = result.points[0]
        assert point.startup_delay_ms_mean > 0
        assert 0.0 <= point.server_fallback_fraction <= 1.0
