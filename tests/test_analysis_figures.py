"""Section III figure reproduction: distributional shape assertions.

These tests run the analysis on the default synthetic trace and assert
the *qualitative properties* each paper figure demonstrates (O1-O5).
"""

import pytest

from repro.analysis.figures import TraceAnalysis


@pytest.fixture(scope="module")
def analysis(default_dataset):
    return TraceAnalysis(default_dataset)


class TestFig2Growth:
    def test_upload_volume_grows(self, analysis):
        figure = analysis.fig2_videos_added_over_time()
        assert figure.notes["growth_ratio"] > 1.5

    def test_buckets_cover_horizon(self, analysis, default_dataset):
        figure = analysis.fig2_videos_added_over_time(bucket_days=30)
        total = sum(y for _x, y in figure.series["videos_added"])
        assert total == default_dataset.num_videos

    def test_invalid_bucket_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.fig2_videos_added_over_time(bucket_days=0)


class TestFig3ChannelViewFrequency:
    def test_heavy_tail_across_channels(self, analysis):
        figure = analysis.fig3_channel_view_frequency_cdf()
        # Paper: 20% of channels < 39 views/day, top 1% > 783k --
        # orders of magnitude of spread.
        assert figure.notes["p99"] > 20 * max(figure.notes["p20"], 1e-9)

    def test_cdf_well_formed(self, analysis):
        points = analysis.fig3_channel_view_frequency_cdf().series["cdf"]
        assert points[-1][1] == 1.0


class TestFig4Subscribers:
    def test_subscriber_spread(self, analysis):
        figure = analysis.fig4_channel_subscribers_cdf()
        # Paper: bottom 25% < 100 subscribers, top 25% > 1390 (>10x).
        assert figure.notes["p75"] >= 4 * max(figure.notes["p25"], 1.0)


class TestFig5ViewsVsSubscriptions:
    def test_strong_positive_correlation(self, analysis):
        figure = analysis.fig5_views_vs_subscriptions()
        assert figure.notes["log_pearson"] > 0.5

    def test_scatter_sorted_by_subscribers(self, analysis):
        points = analysis.fig5_views_vs_subscriptions().series["scatter"]
        xs = [x for x, _y in points]
        assert xs == sorted(xs)


class TestFig6VideosPerChannel:
    def test_heavy_tail(self, analysis):
        figure = analysis.fig6_videos_per_channel_cdf()
        # Paper: median 9 videos, top 10% > 116 -- strong skew.
        assert figure.notes["p90"] > 3 * max(figure.notes["p50"], 1.0)


class TestFig7VideoViews:
    def test_one_percent_dominates(self, analysis):
        figure = analysis.fig7_video_views_cdf()
        # Paper: median 5,517 views, top 10% > 385,000 (~70x).
        assert figure.notes["p99"] > 10 * max(figure.notes["p50"], 1.0)


class TestFig8Favorites:
    def test_favorites_correlate_with_views(self, analysis):
        figure = analysis.fig8_favorites_cdf()
        # Chatzopoulou et al.: Pearson close to 1 for views/favorites.
        assert figure.notes["views_pearson"] > 0.8

    def test_favorites_heavy_tailed(self, analysis):
        figure = analysis.fig8_favorites_cdf()
        assert figure.notes["p90"] > 3 * max(figure.notes["p20"], 1.0)


class TestFig9WithinChannelZipf:
    def test_zipf_slope_near_minus_one(self, analysis):
        figure = analysis.fig9_within_channel_popularity()
        for tier in ("high", "medium", "low"):
            slope = figure.notes[f"{tier}_zipf_slope"]
            assert -1.6 < slope < -0.5, f"{tier} channel slope {slope}"

    def test_all_tiers_present(self, analysis):
        figure = analysis.fig9_within_channel_popularity()
        assert set(figure.series) == {"high", "medium", "low", "zipf_high"}

    def test_rank_series_sorted_descending(self, analysis):
        figure = analysis.fig9_within_channel_popularity()
        views = [y for _x, y in figure.series["high"]]
        assert views == sorted(views, reverse=True)

    def test_high_channel_tops_low_channel(self, analysis):
        figure = analysis.fig9_within_channel_popularity()
        assert figure.series["high"][0][1] > figure.series["low"][0][1]

    def test_min_videos_filter(self, analysis):
        with pytest.raises(ValueError):
            analysis.fig9_within_channel_popularity(min_videos=10 ** 9)


class TestFig11ChannelInterests:
    def test_channels_are_focused(self, analysis, default_dataset):
        figure = analysis.fig11_interests_per_channel_cdf()
        assert figure.notes["p50"] <= default_dataset.num_categories / 2


class TestFig12InterestSimilarity:
    def test_users_subscribe_within_interests(self, analysis):
        figure = analysis.fig12_interest_similarity_cdf()
        assert figure.notes["p50"] >= 0.5
        assert figure.notes["p75"] >= 0.7

    def test_similarity_in_unit_interval(self, analysis):
        points = analysis.fig12_interest_similarity_cdf().series["cdf"]
        assert all(0.0 <= x <= 1.0 for x, _y in points)

    def test_single_user_similarity_formula(self, analysis, default_dataset):
        user = next(
            u for u in default_dataset.iter_users()
            if u.interest_ids and u.subscribed_channel_ids
        )
        value = analysis.user_interest_similarity(user.user_id)
        assert 0.0 <= value <= 1.0


class TestFig13UserInterests:
    def test_limited_interest_counts(self, analysis):
        figure = analysis.fig13_interests_per_user_cdf()
        assert figure.notes["max"] <= 18
        assert figure.notes["frac_below_10"] >= 0.55


class TestObservations:
    def test_all_observations_hold(self, analysis):
        verdicts = analysis.check_observations()
        failed = [name for name, ok in verdicts.items() if not ok]
        assert not failed, f"observations failed: {failed}"


class TestRendering:
    def test_all_figures_render(self, analysis):
        for figure in analysis.all_figures():
            rows = figure.render_rows()
            assert rows[0].startswith("Fig")
            assert len(rows) >= 2

    def test_empty_dataset_rejected(self):
        from repro.trace.dataset import TraceDataset

        with pytest.raises(ValueError):
            TraceAnalysis(TraceDataset())
