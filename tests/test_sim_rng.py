"""Unit tests for the deterministic RNG streams."""

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_adjacent_names_uncorrelated(self):
        # SHA-based derivation: similar names give unrelated seeds.
        a = derive_seed(0, "latency")
        b = derive_seed(0, "latency2")
        assert bin(a ^ b).count("1") > 10

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456789, "stream") < 2 ** 64


class TestRngStreams:
    def test_same_name_same_object(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_reproducible_across_instances(self):
        a = RngStreams(5).stream("workload")
        b = RngStreams(5).stream("workload")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_decoupled(self):
        streams = RngStreams(5)
        a = streams.stream("a")
        b = streams.stream("b")
        seq_a = [a.random() for _ in range(5)]
        seq_b = [b.random() for _ in range(5)]
        assert seq_a != seq_b

    def test_extra_draws_do_not_perturb_other_stream(self):
        # The decoupling property that motivates the design.
        one = RngStreams(9)
        one.stream("noise").random()  # extra draw on an unrelated stream
        perturbed = [one.stream("main").random() for _ in range(5)]
        two = RngStreams(9)
        clean = [two.stream("main").random() for _ in range(5)]
        assert perturbed == clean

    def test_fork_is_deterministic(self):
        a = RngStreams(3).fork("node:1").stream("s")
        b = RngStreams(3).fork("node:1").stream("s")
        assert a.random() == b.random()

    def test_fork_differs_from_parent(self):
        parent = RngStreams(3)
        child = parent.fork("node:1")
        assert parent.master_seed != child.master_seed
