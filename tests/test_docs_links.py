"""The documentation checker (tools/check_docs.py) and the docs it guards."""

import importlib.util
import os

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def check_docs():
    path = os.path.join(_REPO_ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepoDocs:
    def test_docs_pages_exist_and_are_linked_from_readme(self):
        for page in ("architecture.md", "tracing.md", "reproducing-the-paper.md"):
            assert os.path.exists(os.path.join(_REPO_ROOT, "docs", page))
        with open(os.path.join(_REPO_ROOT, "README.md"), encoding="utf-8") as fh:
            readme = fh.read()
        assert "docs/architecture.md" in readme
        assert "docs/tracing.md" in readme
        assert "docs/reproducing-the-paper.md" in readme

    def test_all_repo_markdown_is_clean(self, check_docs):
        cwd = os.getcwd()
        os.chdir(_REPO_ROOT)
        try:
            files = check_docs.iter_markdown_files(".")
            problems = []
            for path in files:
                problems.extend(check_docs.check_file(path))
        finally:
            os.chdir(cwd)
        assert problems == []

    def test_architecture_page_has_mermaid(self):
        with open(
            os.path.join(_REPO_ROOT, "docs", "architecture.md"), encoding="utf-8"
        ) as fh:
            assert "```mermaid" in fh.read()


class TestLinkChecker:
    def test_broken_relative_link_detected(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](no/such/file.md)\n")
        problems = check_docs.check_file(str(page))
        assert len(problems) == 1
        assert "broken link target" in problems[0]

    def test_existing_relative_link_passes(self, check_docs, tmp_path):
        (tmp_path / "other.md").write_text("hi\n")
        page = tmp_path / "page.md"
        page.write_text("see [other](other.md#section)\n")
        assert check_docs.check_file(str(page)) == []

    def test_external_and_anchor_links_skipped(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[a](https://example.com/x.md) [b](#local-anchor) "
            "[c](mailto:x@example.com)\n"
        )
        assert check_docs.check_file(str(page)) == []

    def test_links_inside_code_fences_ignored(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[fake](not/real.md)\n```\n")
        assert check_docs.check_file(str(page)) == []


class TestMermaidChecker:
    def test_valid_block_passes(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text('```mermaid\nflowchart TD\n  A["x"] --> B\n```\n')
        assert check_docs.check_file(str(page)) == []

    def test_unknown_header_flagged(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```mermaid\nnotadiagram TD\n  A --> B\n```\n")
        problems = check_docs.check_file(str(page))
        assert any("expected one of" in p for p in problems)

    def test_unbalanced_bracket_flagged(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```mermaid\nflowchart TD\n  A[broken --> B\n```\n")
        problems = check_docs.check_file(str(page))
        assert any("unbalanced" in p for p in problems)

    def test_unterminated_fence_flagged(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```mermaid\nflowchart TD\n  A --> B\n")
        problems = check_docs.check_file(str(page))
        assert any("unterminated" in p for p in problems)

    def test_empty_block_flagged(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```mermaid\n```\n")
        problems = check_docs.check_file(str(page))
        assert any("empty mermaid block" in p for p in problems)


class TestTableChecker:
    def test_well_formed_table_passes(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("| a | b |\n| --- | --- |\n| 1 | 2 |\n")
        assert check_docs.check_file(str(page)) == []

    def test_missing_separator_flagged(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("| a | b |\n| 1 | 2 |\n| 3 | 4 |\n")
        problems = check_docs.check_file(str(page))
        assert any("separator" in p for p in problems)

    def test_ragged_row_flagged_with_line_number(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("| a | b |\n| --- | --- |\n| 1 | 2 |\n| only one |\n")
        problems = check_docs.check_file(str(page))
        assert len(problems) == 1
        assert problems[0].startswith(f"{page}:4:")
        assert "1 cell(s), header has 2" in problems[0]

    def test_escaped_pipe_is_one_cell(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("| a | b |\n| --- | --- |\n| x \\| y | 2 |\n")
        assert check_docs.check_file(str(page)) == []

    def test_tables_inside_code_fences_ignored(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n| not | a |\n| real | table |\n```\n")
        assert check_docs.check_file(str(page)) == []

    def test_trailing_table_at_eof_checked(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("text\n\n| a | b |\n| --- | --- |\n| 1 | 2 | 3 |")
        problems = check_docs.check_file(str(page))
        assert any("3 cell(s), header has 2" in p for p in problems)
