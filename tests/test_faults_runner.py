"""End-to-end fault injection: crash-churn, failover, and determinism.

One fault-injected smoke run per protocol (module-scoped, reused across
assertions) plus the two determinism contracts: a zero FaultPlan leaves
the run byte-identical to a fault-free build, and a nonzero plan is
byte-identical across repeated executions.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.faults.plan import FaultPlan
from repro.obs.timeseries import run_with_timeseries

PROTOCOLS = ("socialtube", "nettube", "pavod")


def _chaos_spec(protocol, seed=77):
    return ExperimentSpec(
        protocol=protocol, config=SimulationConfig.smoke_scale(seed=seed)
    ).with_faults(FaultPlan.demo())


@pytest.fixture(scope="module", params=PROTOCOLS)
def chaos_run(request):
    """(runner, result) of one fault-injected smoke run per protocol."""
    spec = _chaos_spec(request.param)
    runner = ExperimentRunner(
        spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
    )
    return runner, runner.run()


class TestChaosRuns:
    def test_faults_actually_fire(self, chaos_run):
        _runner, result = chaos_run
        assert result.metrics.crashes > 0
        assert result.metrics.interrupted_transfers > 0

    def test_every_interruption_resolves(self, chaos_run):
        """Resume to a peer, fall over to the server, or die mid-failover
        (the consumer itself crashed) -- never a lost session."""
        runner, result = chaos_run
        metrics = result.metrics
        resolved = (
            metrics.failover_peer_resumes + metrics.failover_server_fallbacks
        )
        assert resolved > 0
        assert metrics.interrupted_transfers >= resolved
        assert not runner._failovers  # nothing left dangling at run end
        assert not runner._watches
        assert not runner._consumers

    def test_recovery_metrics_are_consistent(self, chaos_run):
        _runner, result = chaos_run
        metrics = result.metrics
        assert metrics.failover_latency_ms_mean > 0
        assert 0.0 <= metrics.degraded_serve_fraction <= 1.0
        assert metrics.retries_per_serve >= 0.0

    def test_overlay_survives_the_chaos(self, chaos_run):
        """After every crash and repair sweep the link tables must obey
        the invariants (pending repairs are tolerated by the checker)."""
        runner, _result = chaos_run
        structure = getattr(runner.protocol, "structure", None)
        if structure is None:
            pytest.skip("protocol has no hierarchical structure")
        structure.assert_invariants()


class TestDeterminism:
    def test_zero_plan_is_byte_identical_to_no_plan(self):
        base = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale(seed=5)
        )
        zeroed = base.with_faults(FaultPlan())
        a = run_with_timeseries(base)
        b = run_with_timeseries(zeroed)
        assert a.jsonl == b.jsonl
        assert a.table.digest() == b.table.digest()
        assert a.result.render_rows() == b.result.render_rows()

    def test_fault_run_replays_byte_identically(self):
        spec = _chaos_spec("socialtube", seed=5)
        a = run_with_timeseries(spec)
        b = run_with_timeseries(spec)
        assert a.jsonl == b.jsonl
        assert a.table.to_canonical_json() == b.table.to_canonical_json()

    def test_fault_columns_only_on_fault_runs(self):
        base = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale(seed=5)
        )
        plain = run_with_timeseries(base)
        chaos = run_with_timeseries(base.with_faults(FaultPlan.demo()))
        assert "crashes" not in plain.table.windows[0]
        assert "crashes" in chaos.table.windows[0]
        assert sum(chaos.table.series("crashes")) > 0
