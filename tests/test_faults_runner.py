"""End-to-end fault injection: crash-churn, failover, and determinism.

One fault-injected smoke run per protocol (module-scoped, reused across
assertions) plus the two determinism contracts: a zero FaultPlan leaves
the run byte-identical to a fault-free build, and a nonzero plan is
byte-identical across repeated executions.
"""

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.obs.timeseries import run_with_timeseries

PROTOCOLS = ("socialtube", "nettube", "pavod")

FAMILY_PLANS = {
    "community_crash": FaultPlan.community_crash_demo,
    "tracker_outage": FaultPlan.tracker_outage_demo,
    "partition": FaultPlan.partition_demo,
    "flash_crowd": FaultPlan.flash_crowd_demo,
}


def _chaos_spec(protocol, seed=77):
    return ExperimentSpec(
        protocol=protocol, config=SimulationConfig.smoke_scale(seed=seed)
    ).with_faults(FaultPlan.demo())


@pytest.fixture(scope="module", params=PROTOCOLS)
def chaos_run(request):
    """(runner, result) of one fault-injected smoke run per protocol."""
    spec = _chaos_spec(request.param)
    runner = ExperimentRunner(
        spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
    )
    return runner, runner.run()


class TestChaosRuns:
    def test_faults_actually_fire(self, chaos_run):
        _runner, result = chaos_run
        assert result.metrics.crashes > 0
        assert result.metrics.interrupted_transfers > 0

    def test_every_interruption_resolves(self, chaos_run):
        """Resume to a peer, fall over to the server, or die mid-failover
        (the consumer itself crashed) -- never a lost session."""
        runner, result = chaos_run
        metrics = result.metrics
        resolved = (
            metrics.failover_peer_resumes + metrics.failover_server_fallbacks
        )
        assert resolved > 0
        assert metrics.interrupted_transfers >= resolved
        assert not runner._failovers  # nothing left dangling at run end
        assert not runner._watches
        assert not runner._consumers

    def test_recovery_metrics_are_consistent(self, chaos_run):
        _runner, result = chaos_run
        metrics = result.metrics
        assert metrics.failover_latency_ms_mean > 0
        assert 0.0 <= metrics.degraded_serve_fraction <= 1.0
        assert metrics.retries_per_serve >= 0.0

    def test_overlay_survives_the_chaos(self, chaos_run):
        """After every crash and repair sweep the link tables must obey
        the invariants (pending repairs are tolerated by the checker)."""
        runner, _result = chaos_run
        structure = getattr(runner.protocol, "structure", None)
        if structure is None:
            pytest.skip("protocol has no hierarchical structure")
        structure.assert_invariants()


@pytest.fixture(scope="module", params=sorted(FAMILY_PLANS))
def family_run(request):
    """(family, runner, result) of one v2-family run on socialtube."""
    spec = ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale(seed=2014)
    ).with_faults(FAMILY_PLANS[request.param]())
    runner = ExperimentRunner(
        spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
    )
    return request.param, runner, runner.run()


class TestInfraFamilies:
    """Each v2 family fires, degrades gracefully, and cleans up."""

    def test_family_fires_and_recovers(self, family_run):
        family, runner, result = family_run
        metrics = result.metrics
        if family == "community_crash":
            assert metrics.burst_crashes > 0
            assert metrics.crashes >= metrics.burst_crashes
        elif family == "tracker_outage":
            assert metrics.tracker_lookup_failures > 0
            assert metrics.reregistrations > 0
        elif family == "partition":
            assert metrics.healed_nodes > 0
        else:  # flash_crowd
            assert metrics.server_sheds > 0
            assert metrics.shed_retries > 0
        assert metrics.recovery_time_s > 0
        # Graceful degradation, not collapse: no dangling sessions.
        assert not runner._failovers
        assert not runner._watches
        assert not runner._consumers

    def test_fault_state_fully_unwound_after_run(self, family_run):
        """Every window must leave no residue once it closes."""
        _family, runner, _result = family_run
        assert runner.protocol.partition_guard is None
        assert runner.server.admission_limit == 0
        assert not runner.server.tracker_down

    def test_overlay_survives_the_burst(self, family_run):
        family, runner, _result = family_run
        if family != "community_crash":
            pytest.skip("invariant stress is the burst's job")
        structure = getattr(runner.protocol, "structure", None)
        if structure is None:
            pytest.skip("protocol has no hierarchical structure")
        structure.assert_invariants()

    def test_retry_budget_exhaustion_degrades_to_server(self):
        """With every lookup lost, each serve burns its whole retry
        budget and still completes -- via the server, never dropped."""
        plan = FaultPlan(query_loss_prob=1.0, retry=RetryPolicy(max_retries=1))
        spec = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale(seed=5)
        ).with_faults(plan)
        runner = ExperimentRunner(
            spec, dataset=shared_trace_cache.dataset_for(spec.config.trace)
        )
        metrics = runner.run().metrics
        assert metrics.retries_per_serve > 0
        # Every peer lookup exhausted its budget, so the server carried
        # essentially the whole catalogue.
        assert metrics.server_fallback_fraction > 0.5
        assert not runner._failovers
        assert not runner._watches
        assert not runner._consumers


class TestDeterminism:
    def test_zero_plan_is_byte_identical_to_no_plan(self):
        base = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale(seed=5)
        )
        zeroed = base.with_faults(FaultPlan())
        a = run_with_timeseries(base)
        b = run_with_timeseries(zeroed)
        assert a.jsonl == b.jsonl
        assert a.table.digest() == b.table.digest()
        assert a.result.render_rows() == b.result.render_rows()

    def test_fault_run_replays_byte_identically(self):
        spec = _chaos_spec("socialtube", seed=5)
        a = run_with_timeseries(spec)
        b = run_with_timeseries(spec)
        assert a.jsonl == b.jsonl
        assert a.table.to_canonical_json() == b.table.to_canonical_json()

    def test_infra_plan_replays_byte_identically(self):
        spec = ExperimentSpec(
            protocol="nettube", config=SimulationConfig.smoke_scale(seed=2014)
        ).with_faults(FaultPlan.infra_demo())
        a = run_with_timeseries(spec)
        b = run_with_timeseries(spec)
        assert a.jsonl == b.jsonl
        assert a.table.to_canonical_json() == b.table.to_canonical_json()
        # The infra fault columns exist and the families actually fired.
        window = a.table.windows[0]
        for column in (
            "burst_crashes",
            "infra_transitions",
            "lookup_failures",
            "reregistrations",
            "healed_nodes",
            "server_sheds",
        ):
            assert column in window
        assert sum(a.table.series("burst_crashes")) > 0
        assert sum(a.table.series("infra_transitions")) > 0
        assert sum(a.table.series("server_sheds")) > 0

    def test_fault_columns_only_on_fault_runs(self):
        base = ExperimentSpec(
            protocol="socialtube", config=SimulationConfig.smoke_scale(seed=5)
        )
        plain = run_with_timeseries(base)
        chaos = run_with_timeseries(base.with_faults(FaultPlan.demo()))
        assert "crashes" not in plain.table.windows[0]
        assert "crashes" in chaos.table.windows[0]
        assert sum(chaos.table.series("crashes")) > 0
