"""Positive/negative fixtures for the flow-sensitive rule families and
the migration of PR 1's global-random / set-iteration rules onto the
dataflow pass."""

import ast
import textwrap

from repro.lint import dataflow
from repro.lint.ast_rules import (
    ALL_AST_RULES,
    GlobalRandomRule,
    RULE_SEVERITIES,
    SetIterationRule,
)
from repro.lint.dataflow import FLOW_RULES, collect_flow_findings
from repro.lint.findings import RuleContext
from repro.lint.runner import lint_source


def flow_lint(
    source,
    *,
    path="src/repro/x.py",
    module_name="repro.x",
    shard_package=None,
    requires_decl=False,
    is_test=False,
    is_rng=False,
):
    source = textwrap.dedent(source)
    ctx = RuleContext(
        path=path,
        source=source,
        module_name=module_name,
        shard_package=shard_package,
        requires_module_shard_decl=requires_decl,
        is_test_module=is_test,
        is_rng_module=is_rng,
    )
    return collect_flow_findings(ast.parse(source), ctx)


def rules_of(findings):
    return [f.rule for f in findings]


class TestMutableDefaultArg:
    def test_list_default_flagged(self):
        findings = flow_lint("def f(xs=[]):\n    return xs\n")
        assert rules_of(findings) == ["mutable-default-arg"]

    def test_kwonly_dict_default_flagged(self):
        findings = flow_lint("def f(*, m={}):\n    return m\n")
        assert rules_of(findings) == ["mutable-default-arg"]

    def test_none_and_tuple_defaults_allowed(self):
        assert flow_lint("def f(xs=None, t=(), s='x'):\n    return xs\n") == []

    def test_runs_on_isolated_snippets_too(self):
        # Unlike the project-scoped rules this one has no false-positive
        # risk, so lint_source surfaces it for any path.
        findings = lint_source("def f(xs=[]):\n    return xs\n", path="any.py")
        assert rules_of(findings) == ["mutable-default-arg"]

    def test_suppressible_per_line(self):
        source = "def f(xs=[]):  # lint: disable=mutable-default-arg\n    return xs\n"
        assert lint_source(source, path="any.py") == []


class TestUnsortedAccumulation:
    def test_float_sum_over_set_flagged(self):
        findings = flow_lint(
            """
            def total(items):
                seen = set(items)
                acc = 0.0
                for x in seen:
                    acc += x
                return acc
            """
        )
        assert rules_of(findings) == ["unsorted-accumulation"]

    def test_append_accumulation_over_set_flagged(self):
        findings = flow_lint(
            """
            def collect(items):
                seen = set(items)
                out = []
                for x in seen:
                    out.append(x)
                return out
            """
        )
        assert rules_of(findings) == ["unsorted-accumulation"]

    def test_sorted_iteration_allowed(self):
        findings = flow_lint(
            """
            def total(items):
                seen = set(items)
                acc = 0.0
                for x in sorted(seen):
                    acc += x
                return acc
            """
        )
        assert findings == []

    def test_loop_without_accumulation_allowed(self):
        findings = flow_lint(
            """
            def check(items):
                seen = set(items)
                for x in seen:
                    if x < 0:
                        raise ValueError(x)
            """
        )
        assert findings == []


class TestUnsortedSerialization:
    def test_dumps_without_sort_keys_flagged(self):
        findings = flow_lint(
            """
            import json


            def save(payload):
                return json.dumps(payload)
            """
        )
        assert rules_of(findings) == ["unsorted-serialization"]

    def test_dump_to_file_without_sort_keys_flagged(self):
        findings = flow_lint(
            """
            import json


            def save(payload, fh):
                json.dump(payload, fh, indent=2)
            """
        )
        assert rules_of(findings) == ["unsorted-serialization"]

    def test_sort_keys_true_allowed(self):
        findings = flow_lint(
            """
            import json


            def save(payload):
                return json.dumps(payload, sort_keys=True)
            """
        )
        assert findings == []

    def test_project_scoped_only(self):
        # Without a resolved module name (isolated snippet) the rule
        # stays silent -- json.dumps in arbitrary code is not ours to
        # police.
        source = "import json\n\n\ndef save(p):\n    return json.dumps(p)\n"
        assert flow_lint(source, module_name=None) == []
        assert flow_lint(source, is_test=True) == []


class TestRngUnownedGenerator:
    def test_module_level_random_constructor_flagged(self):
        findings = flow_lint(
            """
            import random


            def make():
                return random.Random(3)
            """
        )
        assert rules_of(findings) == ["rng-unowned-generator"]

    def test_from_import_constructor_flagged(self):
        findings = flow_lint(
            """
            from random import Random


            def make():
                return Random(3)
            """
        )
        assert rules_of(findings) == ["rng-unowned-generator"]

    def test_rng_module_and_tests_exempt(self):
        source = "from random import Random\n\n\ndef make():\n    return Random(3)\n"
        assert flow_lint(source, is_rng=True) == []
        assert flow_lint(source, is_test=True) == []
        assert flow_lint(source, module_name=None) == []


class TestRngObsHookDraw:
    def test_draw_inside_tracer_guard_flagged(self):
        findings = flow_lint(
            """
            def emit(self, tracer, rng):
                if tracer:
                    return rng.random()
            """
        )
        assert rules_of(findings) == ["rng-obs-hook-draw"]

    def test_draw_inside_span_flagged(self):
        findings = flow_lint(
            """
            def emit(obs, rng):
                with obs.span("phase"):
                    rng.shuffle([1, 2])
            """
        )
        assert rules_of(findings) == ["rng-obs-hook-draw"]

    def test_draw_outside_hooks_allowed(self):
        findings = flow_lint(
            """
            def emit(self, tracer, rng):
                value = rng.random()
                if tracer:
                    tracer.record(value)
                return value
            """
        )
        assert findings == []


class TestShardAnnotationRules:
    def _shard(self, source, **kw):
        kw.setdefault("shard_package", "sim")
        kw.setdefault("module_name", "repro.sim.x")
        kw.setdefault("path", "src/repro/sim/x.py")
        return flow_lint(source, **kw)

    def test_missing_module_decl_flagged_in_pdes_packages(self):
        findings = self._shard("X = 1  # shard: shared-read\n", requires_decl=True)
        assert rules_of(findings) == ["shard-missing-module-decl"]

    def test_module_decl_satisfies_requirement(self):
        findings = self._shard(
            "# shard: module=shard-local\nX = 1  # shard: shared-read\n",
            requires_decl=True,
        )
        assert findings == []

    def test_unannotated_module_global_flagged(self):
        findings = self._shard("TABLE = {}\n")
        assert rules_of(findings) == ["shard-missing-annotation"]

    def test_unknown_shard_class_flagged(self):
        findings = self._shard("X = 1  # shard: frozen\n")
        assert "bad-shard-annotation" in rules_of(findings)

    def test_mutable_shared_read_flagged(self):
        findings = self._shard("CACHE = {}  # shard: shared-read\n")
        assert rules_of(findings) == ["shard-class-mutable-default"]

    def test_shared_read_rebinding_flagged(self):
        findings = self._shard(
            """
            LIMITS = (1, 2)  # shard: shared-read


            def bump():
                global LIMITS
                LIMITS = (2, 3)
            """
        )
        assert "shard-shared-read-mutated" in rules_of(findings)

    def test_outside_shard_packages_silent(self):
        assert flow_lint("TABLE = {}\n", shard_package=None) == []
        assert flow_lint("TABLE = {}\n", module_name=None) == []


class TestMigratedRules:
    """PR 1's global-random and set-iteration rules now live on the
    dataflow pass with unchanged ids, messages, and suppressions."""

    def test_rules_moved_not_duplicated(self):
        flow_ids = [type(r).__name__ for r in FLOW_RULES]
        ast_ids = [type(r).__name__ for r in ALL_AST_RULES]
        assert flow_ids.count("GlobalRandomRule") == 1
        assert flow_ids.count("SetIterationRule") == 1
        assert "GlobalRandomRule" not in ast_ids
        assert "SetIterationRule" not in ast_ids
        # Back-compat re-export points at the same classes.
        assert GlobalRandomRule is dataflow.GlobalRandomRule
        assert SetIterationRule is dataflow.SetIterationRule

    def test_global_random_findings_identical(self):
        findings = lint_source(
            "import random\n\nrandom.seed(42)\nx = random.random()\n",
            path="src/repro/sim/thing.py",
        )
        assert [(f.rule, f.line) for f in findings] == [
            ("global-random", 3),
            ("global-random", 4),
        ]
        assert "random.seed" in findings[0].message

    def test_set_iteration_findings_identical(self):
        findings = lint_source(
            "def f(s):\n    for x in set(s):\n        print(x)\n",
            path="src/repro/sim/thing.py",
        )
        assert [(f.rule, f.line) for f in findings] == [("set-iteration", 2)]

    def test_suppression_comments_still_work(self):
        source = (
            "import random\n\n"
            "random.seed(42)  # lint: disable=global-random\n"
        )
        assert lint_source(source, path="src/repro/sim/thing.py") == []

    def test_migrated_rules_keep_high_severity(self):
        assert RULE_SEVERITIES["global-random"] == "high"
        assert RULE_SEVERITIES["set-iteration"] == "high"
