"""Unit tests for the statistics toolkit."""

import pytest

from repro.analysis.stats import (
    cdf_at,
    cdf_points,
    gini_coefficient,
    log_log_slope,
    mean,
    mean_confidence_interval,
    pearson_correlation,
    percentile,
    percentiles,
    sample_std,
)


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_matches_numpy(self):
        import numpy as np

        values = [1.5, 9.2, 4.4, 7.7, 2.0, 8.8, 3.3]
        for q in (1, 25, 50, 75, 99):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_percentiles_vector_form(self):
        values = [4, 2, 8, 6]
        assert percentiles(values, [0, 50, 100]) == [
            percentile(values, 0),
            percentile(values, 50),
            percentile(values, 100),
        ]

    def test_percentiles_empty_rejected(self):
        with pytest.raises(ValueError):
            percentiles([], [50])


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_last_point_is_one(self):
        assert cdf_points([3, 1, 2])[-1][1] == 1.0

    def test_monotone(self):
        points = cdf_points([5, 3, 8, 1, 9, 9, 2])
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        assert xs == sorted(xs)
        assert ys == sorted(ys)

    def test_ties_collapse(self):
        points = cdf_points([1, 1, 1, 2])
        assert points == [(1.0, 0.75), (2.0, 1.0)]

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 0) == 0.0
        assert cdf_at(values, 4) == 1.0


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [1])

    def test_zero_variance_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_matches_numpy(self):
        import numpy as np

        xs = [1.0, 4.0, 2.5, 9.1, 5.5]
        ys = [2.0, 3.5, 2.2, 8.0, 6.1]
        assert pearson_correlation(xs, ys) == pytest.approx(
            float(np.corrcoef(xs, ys)[0, 1])
        )


class TestLogLogSlope:
    def test_zipf_slope_recovered(self):
        xs = list(range(1, 101))
        ys = [1000.0 / x for x in xs]
        assert log_log_slope(xs, ys) == pytest.approx(-1.0)

    def test_steeper_exponent(self):
        xs = list(range(1, 101))
        ys = [1000.0 / (x ** 2) for x in xs]
        assert log_log_slope(xs, ys) == pytest.approx(-2.0)

    def test_nonpositive_points_skipped(self):
        assert log_log_slope([0, 1, 2, 4], [5, 10, 5, 2.5]) == pytest.approx(-1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            log_log_slope([1, 1], [2, 3])


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        assert gini_coefficient([0, 0, 0, 100]) > 0.7

    def test_all_zero(self):
        assert gini_coefficient([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1, 2])

    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            mean([])


class TestConfidenceInterval:
    def test_sample_std_matches_hand_computation(self):
        # values 2, 4, 6: mean 4, squared deviations 4+0+4, n-1 = 2.
        assert sample_std([2.0, 4.0, 6.0]) == pytest.approx(2.0)

    def test_sample_std_degenerate(self):
        assert sample_std([]) == 0.0
        assert sample_std([3.0]) == 0.0

    def test_interval_brackets_mean(self):
        m, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert m == pytest.approx(2.5)
        assert lo < m < hi
        # t(df=3) = 3.182, s = sqrt(5/3), half-width = t*s/sqrt(4)
        assert hi - m == pytest.approx(3.182 * (5.0 / 3.0) ** 0.5 / 2.0)

    def test_single_observation_zero_width(self):
        assert mean_confidence_interval([7.0]) == (7.0, 7.0, 7.0)

    def test_identical_values_zero_width(self):
        m, lo, hi = mean_confidence_interval([5.0, 5.0, 5.0])
        assert m == lo == hi == 5.0

    def test_large_sample_uses_normal_approximation(self):
        values = [float(i % 2) for i in range(40)]  # df=39 > 30
        m, lo, hi = mean_confidence_interval(values)
        assert hi - m == pytest.approx(1.960 * sample_std(values) / 40 ** 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_unsupported_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=0.99)
