"""Parallel orchestrator tests: determinism, dedupe, aggregation.

The headline contract: ``run_sweep(specs, jobs=N)`` is byte-identical
to ``run_sweep(specs, jobs=1)`` for any N, because every run owns an
independent RngStreams family and reads a shared immutable corpus.
"""

import dataclasses

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.figures import EvaluationSuite
from repro.experiments.parallel import (
    AggregatedResult,
    aggregate_runs,
    aggregate_sweep,
    family_key,
    run_sweep,
    sweep_specs,
)
from repro.experiments.registry import resolve_params
from repro.experiments.runner import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.trace.synthesizer import TraceConfig

MICRO = SimulationConfig(
    num_nodes=40,
    trace=TraceConfig(num_users=40, num_channels=10, num_videos=200,
                      num_categories=4, seed=10),
    sessions_per_user=2,
    videos_per_session=4,
    mean_off_time_s=60.0,
    seed=10,
)


class TestSweepSpecs:
    def test_protocol_major_cross_product(self):
        specs = sweep_specs(["socialtube", "pavod"], MICRO, seeds=[1, 2])
        assert [(s.protocol, s.seed) for s in specs] == [
            ("socialtube", 1), ("socialtube", 2), ("pavod", 1), ("pavod", 2),
        ]

    def test_default_seed_is_configs(self):
        specs = sweep_specs(["socialtube"], MICRO)
        assert [s.seed for s in specs] == [MICRO.seed]

    def test_all_specs_share_trace_hash(self):
        specs = sweep_specs(["socialtube", "nettube"], MICRO, seeds=[1, 2, 3])
        assert len({s.trace_hash() for s in specs}) == 1


class TestFamilyKey:
    def test_seed_siblings_share_family(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        assert family_key(spec) == family_key(spec.with_seed(99))

    def test_protocols_are_distinct_families(self):
        a = ExperimentSpec(protocol="socialtube", config=MICRO)
        b = ExperimentSpec(protocol="nettube", config=MICRO)
        assert family_key(a) != family_key(b)

    def test_param_changes_split_families(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        assert family_key(spec) != family_key(spec.with_params(ttl=4))


class TestRunSweepDeterminism:
    def test_parallel_matches_serial_exactly(self):
        specs = sweep_specs(["socialtube", "nettube"], MICRO, seeds=[1, 2])
        serial = run_sweep(specs, jobs=1)
        parallel = run_sweep(specs, jobs=4)
        assert serial == parallel
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics
            assert a.events_processed == b.events_processed

    def test_aggregates_match_across_job_counts(self):
        specs = sweep_specs(["socialtube"], MICRO, seeds=[1, 2, 3])
        serial = aggregate_sweep(specs, run_sweep(specs, jobs=1))
        parallel = aggregate_sweep(specs, run_sweep(specs, jobs=2))
        assert serial[0].metrics == parallel[0].metrics
        assert serial[0].intervals == parallel[0].intervals

    def test_results_in_spec_order(self):
        specs = sweep_specs(["pavod", "socialtube"], MICRO, seeds=[1, 2])
        results = run_sweep(specs, jobs=2)
        assert [r.metrics.protocol for r in results] == [
            "PA-VoD", "PA-VoD", "SocialTube", "SocialTube",
        ]

    def test_duplicate_specs_run_once(self):
        spec = ExperimentSpec(protocol="socialtube", config=MICRO)
        results = run_sweep([spec, spec], jobs=1)
        assert len(results) == 2
        assert results[0] is results[1]

    def test_empty_sweep(self):
        assert run_sweep([], jobs=4) == []


class TestAggregation:
    def _runs(self, seeds):
        specs = sweep_specs(["socialtube"], MICRO, seeds=seeds)
        return specs, run_sweep(specs)

    def test_mean_metrics_and_intervals(self):
        specs, results = self._runs([1, 2, 3])
        agg = aggregate_runs(specs, results)
        assert isinstance(agg, AggregatedResult)
        assert agg.num_runs == 3
        assert agg.seeds == (1, 2, 3)
        values = [r.metrics.startup_delay_ms_mean for r in results]
        m, lo, hi = agg.interval("startup_delay_ms_mean")
        assert m == pytest.approx(sum(values) / 3)
        assert lo <= m <= hi
        assert agg.metrics.startup_delay_ms_mean == pytest.approx(m)

    def test_single_run_has_zero_width_interval(self):
        specs, results = self._runs([1])
        agg = aggregate_runs(specs, results)
        m, lo, hi = agg.interval("peer_bandwidth_p50")
        assert m == lo == hi

    def test_mixed_families_rejected(self):
        specs = sweep_specs(["socialtube", "nettube"], MICRO, seeds=[1])
        results = run_sweep(specs)
        with pytest.raises(ValueError, match="family"):
            aggregate_runs(specs, results)

    def test_aggregate_sweep_groups_per_family(self):
        specs = sweep_specs(["socialtube", "nettube"], MICRO, seeds=[1, 2])
        results = run_sweep(specs)
        aggregates = aggregate_sweep(specs, results)
        assert [a.protocol for a in aggregates] == ["SocialTube", "NetTube"]
        assert all(a.num_runs == 2 for a in aggregates)

    def test_render_rows_mention_ci(self):
        specs, results = self._runs([1, 2])
        rows = aggregate_runs(specs, results).render_rows()
        assert "95% CI" in rows[0]
        assert any("startup delay" in row for row in rows)


class TestEvaluationSuiteIntegration:
    def test_identical_trace_configs_share_one_corpus(self):
        # The old suite synthesized per environment even when the trace
        # recipes matched; the content-keyed cache makes them share.
        planetlab = dataclasses.replace(MICRO, mean_off_time_s=120.0)
        suite = EvaluationSuite(config=MICRO, planetlab_config=planetlab)
        assert suite._dataset_for("peersim") is suite._dataset_for("planetlab")

    def test_single_seed_returns_plain_result(self):
        suite = EvaluationSuite(config=MICRO)
        assert isinstance(suite.result("PA-VoD"), ExperimentResult)

    def test_multi_seed_returns_aggregate(self):
        suite = EvaluationSuite(config=MICRO, seeds=[1, 2])
        result = suite.result("PA-VoD")
        assert isinstance(result, AggregatedResult)
        assert result.seeds == (1, 2)
        assert result.metrics.protocol == "PA-VoD"

    def test_warm_fills_cache_in_one_sweep(self):
        suite = EvaluationSuite(config=MICRO, seeds=[1, 2], jobs=2)
        suite.warm(variant_labels=["PA-VoD", "SocialTube w/ PF"])
        assert ("PA-VoD", "peersim") in suite._results
        assert ("SocialTube w/ PF", "peersim") in suite._results

    def test_suite_multi_seed_matches_direct_sweep(self):
        suite = EvaluationSuite(config=MICRO, seeds=[1, 2])
        via_suite = suite.result("PA-VoD")
        cfg = MICRO
        base = ExperimentSpec(
            protocol="pavod", config=cfg,
            params=resolve_params("pavod", cfg),
        )
        specs = [base.with_seed(1), base.with_seed(2)]
        direct = aggregate_runs(specs, run_sweep(specs))
        assert via_suite.metrics == direct.metrics
        assert via_suite.intervals == direct.intervals
