"""Baseline mechanics: a checked-in baseline suppresses exactly its
fingerprints, stale entries are reported, fingerprints survive line
drift, and the JSON report is byte-deterministic."""

import json
import subprocess
import sys

import pytest

from repro.lint.baseline import (
    Baseline,
    discover_baseline_path,
    load_baseline,
    write_baseline,
)
from repro.lint.fingerprint import compute_fingerprint
from repro.lint.runner import lint_paths, render_json
from repro.cli import main

DIRTY = "import random\nrandom.seed(0)\nx = random.random()\n"


@pytest.fixture()
def proj(tmp_path):
    root = tmp_path / "proj"
    root.mkdir()
    (root / "mod.py").write_text(DIRTY)
    return root


class TestBaselineSplit:
    def test_baseline_suppresses_exactly_its_fingerprints(self, proj, tmp_path):
        report = lint_paths([str(proj)])
        assert [f.rule for f in report.findings] == ["global-random"] * 2
        first, second = report.findings
        assert first.fingerprint and second.fingerprint
        assert first.fingerprint != second.fingerprint

        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), [first])
        baseline = load_baseline(str(baseline_path))

        rebaselined = lint_paths([str(proj)], baseline=baseline)
        assert [f.fingerprint for f in rebaselined.findings] == [
            second.fingerprint
        ]
        assert rebaselined.baselined == 1
        assert rebaselined.stale_baseline == []

    def test_stale_entries_reported(self, proj):
        baseline = Baseline(
            path="<memory>",
            entries={"deadbeefdeadbeef": {"path": "gone.py", "rule": "x"}},
        )
        report = lint_paths([str(proj)], baseline=baseline)
        assert report.stale_baseline == ["deadbeefdeadbeef"]
        assert len(report.findings) == 2  # nothing suppressed

    def test_write_load_roundtrip(self, proj, tmp_path):
        report = lint_paths([str(proj)])
        path = tmp_path / "baseline.json"
        write_baseline(str(path), report.findings)
        loaded = load_baseline(str(path))
        assert sorted(loaded.entries) == sorted(
            f.fingerprint for f in report.findings
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = load_baseline(str(tmp_path / "nope.json"))
        assert baseline.entries == {}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "fingerprints": {}}')
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_discovery_walks_up_to_tools_dir(self, tmp_path):
        (tmp_path / "tools").mkdir()
        expected = tmp_path / "tools" / "lint_baseline.json"
        expected.write_text('{"schema": 1, "fingerprints": {}}')
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        assert discover_baseline_path(str(nested)) == str(expected)


class TestFingerprintStability:
    def test_fingerprint_survives_line_drift(self, proj):
        before = {f.message: f.fingerprint for f in lint_paths([str(proj)]).findings}
        # Prepend a comment: every finding moves down one line.
        (proj / "mod.py").write_text("# a new leading comment\n" + DIRTY)
        after_report = lint_paths([str(proj)])
        after = {f.message: f.fingerprint for f in after_report.findings}
        assert before == after
        assert all(f.line > 2 for f in after_report.findings)

    def test_occurrence_index_disambiguates_duplicates(self):
        fp0 = compute_fingerprint("m.py", "r", "same message", 0)
        fp1 = compute_fingerprint("m.py", "r", "same message", 1)
        assert fp0 != fp1
        assert len(fp0) == len(fp1) == 16


class TestGoldenJsonDeterminism:
    def test_render_json_byte_identical_across_runs(self, proj):
        blob_a = render_json(lint_paths([str(proj)]))
        blob_b = render_json(lint_paths([str(proj)]))
        assert blob_a == blob_b

    def test_full_tree_json_byte_identical_across_processes(self):
        # The real gate: two fresh interpreters (fresh hash seeds) must
        # emit the identical report for the shipped tree.
        cmd = [sys.executable, "-m", "repro", "lint", "--json"]
        runs = [
            subprocess.run(
                cmd,
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=False,
            )
            for seed in ("1", "2")
        ]
        assert runs[0].returncode == 0, runs[0].stdout + runs[0].stderr
        assert runs[0].stdout == runs[1].stdout
        payload = json.loads(runs[0].stdout)
        assert payload["schema"] == 2
        assert payload["ok"] is True

    def test_report_shape(self, proj):
        payload = json.loads(render_json(lint_paths([str(proj)])))
        assert set(payload) == {
            "schema",
            "ok",
            "files_checked",
            "suppressed",
            "baselined",
            "stale_baseline",
            "severity_counts",
            "program",
            "findings",
        }
        assert payload["severity_counts"]["high"] == 2
        assert [f["rule"] for f in payload["findings"]] == ["global-random"] * 2


class TestCliBaselineFlow:
    def test_update_baseline_then_clean_run(self, proj, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        code = main(
            [
                "lint",
                str(proj),
                "--baseline",
                str(baseline_path),
                "--update-baseline",
            ]
        )
        assert code == 0
        assert baseline_path.exists()
        capsys.readouterr()

        code = main(["lint", str(proj), "--baseline", str(baseline_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 baselined" in out

        code = main(["lint", str(proj), "--no-baseline"])
        assert code == 1

    def test_explain_known_and_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "shard-event-mutation"]) == 0
        out = capsys.readouterr().out
        assert "shard-event-mutation" in out
        assert "[high]" in out
        assert main(["lint", "--explain", "no-such-rule"]) == 2
