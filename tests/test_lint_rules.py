"""Unit tests for the AST determinism rules, suppression, and the CLI."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint.ast_rules import RULE_DESCRIPTIONS
from repro.lint.runner import lint_paths, lint_source, render_json, render_text
from repro.lint.suppressions import SuppressionIndex


def lint(source, path="pkg/module.py"):
    return lint_source(textwrap.dedent(source), path=path)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestGlobalRandomRule:
    def test_module_global_call_flagged(self):
        findings = lint("import random\nrandom.seed(0)\n")
        assert rules_of(findings) == ["global-random"]
        assert findings[0].line == 2

    def test_every_global_state_function_flagged(self):
        source = (
            "import random\n"
            "random.random()\n"
            "random.shuffle([1, 2])\n"
            "random.choice([1, 2])\n"
        )
        assert len(lint(source)) == 3

    def test_aliased_import_flagged(self):
        findings = lint("import random as rnd\nrnd.randint(0, 5)\n")
        assert rules_of(findings) == ["global-random"]

    def test_injected_random_instance_allowed(self):
        assert lint("import random\nrng = random.Random(7)\nrng.random()\n") == []

    def test_from_import_of_global_function_flagged(self):
        findings = lint("from random import random\nx = random()\n")
        assert rules_of(findings) == ["global-random"]

    def test_from_import_of_random_class_allowed(self):
        assert lint("from random import Random\nrng = Random(1)\n") == []

    def test_numpy_global_state_flagged(self):
        findings = lint("import numpy as np\nx = np.random.rand(3)\n")
        assert rules_of(findings) == ["global-random"]

    def test_numpy_default_rng_allowed(self):
        assert lint("import numpy as np\ng = np.random.default_rng(0)\n") == []

    def test_rng_module_is_exempt(self):
        findings = lint(
            "import random\nrandom.Random(0)\nrandom.seed(1)\n",
            path="src/repro/sim/rng.py",
        )
        assert findings == []


class TestWallClockRule:
    def test_time_time_flagged(self):
        findings = lint("import time\nnow = time.time()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_monotonic_and_sleep_flagged(self):
        source = "import time\ntime.monotonic()\ntime.sleep(1)\n"
        assert len(lint(source)) == 2

    def test_datetime_now_flagged(self):
        findings = lint("from datetime import datetime\nt = datetime.now()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_datetime_module_utcnow_flagged(self):
        findings = lint("import datetime\nt = datetime.datetime.utcnow()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_from_time_import_time_flagged(self):
        findings = lint("from time import time\nt = time()\n")
        assert rules_of(findings) == ["wall-clock"]

    def test_simulated_clock_allowed(self):
        assert lint("def fire(sched):\n    return sched.now + 5.0\n") == []


class TestSetIterationRule:
    def test_for_over_set_call_flagged(self):
        findings = lint("for x in set([3, 1]):\n    print(x)\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_comprehension_over_set_literal_flagged(self):
        findings = lint("ys = [x for x in {1, 2, 3}]\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_list_of_frozenset_flagged(self):
        findings = lint("xs = list(frozenset([1, 2]))\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_rng_choice_of_set_flagged(self):
        findings = lint("def pick(rng, ids):\n    return rng.choice(set(ids))\n")
        assert rules_of(findings) == ["set-iteration"]

    def test_sorted_set_allowed(self):
        assert lint("xs = sorted(set([2, 1]))\nfor x in sorted({3, 4}):\n    pass\n") == []

    def test_membership_test_allowed(self):
        assert lint("def f(x, ids):\n    return x in set(ids)\n") == []


class TestUnusedImportRule:
    def test_unused_from_import_flagged(self):
        findings = lint("from typing import List\nx = 1\n")
        assert rules_of(findings) == ["unused-import"]
        assert "'List'" in findings[0].message

    def test_used_import_allowed(self):
        assert lint("import json\nprint(json.dumps({}))\n") == []

    def test_dunder_all_counts_as_use(self):
        source = "from json import dumps\n__all__ = ['dumps']\n"
        assert lint(source) == []

    def test_quoted_annotation_counts_as_use(self):
        source = (
            "from typing import Sequence\n"
            "def f(xs: 'Sequence[int]') -> int:\n"
            "    return len(xs)\n"
        )
        assert lint(source) == []

    def test_future_import_ignored(self):
        assert lint("from __future__ import annotations\n") == []


class TestDeadNameRule:
    def test_unused_pure_local_flagged(self):
        findings = lint("def f():\n    leftover = 5\n    return 1\n")
        assert rules_of(findings) == ["dead-name"]

    def test_underscore_prefix_allowed(self):
        assert lint("def f():\n    _ignored = 5\n    return 1\n") == []

    def test_used_local_allowed(self):
        assert lint("def f():\n    x = 5\n    return x\n") == []

    def test_call_result_not_flagged(self):
        # A call may be executed for its side effect; not a dead name.
        assert lint("def f(g):\n    result = g()\n    return 1\n") == []

    def test_use_in_nested_function_counts(self):
        source = (
            "def f():\n"
            "    x = 5\n"
            "    def g():\n"
            "        return x\n"
            "    return g\n"
        )
        assert lint(source) == []


class TestBroadExceptRule:
    def test_bare_except_flagged(self):
        findings = lint("try:\n    pass\nexcept:\n    pass\n")
        assert rules_of(findings) == ["broad-except"]

    def test_except_exception_flagged(self):
        findings = lint("try:\n    pass\nexcept Exception:\n    pass\n")
        assert rules_of(findings) == ["broad-except"]

    def test_reraising_handler_allowed(self):
        source = "try:\n    pass\nexcept Exception:\n    log()\n    raise\n"
        assert lint(source) == []

    def test_specific_exception_allowed(self):
        assert lint("try:\n    pass\nexcept ValueError:\n    pass\n") == []


class TestFloatTimeEqRule:
    def test_eq_against_scheduler_now_flagged(self):
        findings = lint("def f(sched):\n    return sched.now == 3.0\n")
        assert rules_of(findings) == ["float-time-eq"]

    def test_neq_flagged(self):
        findings = lint("def f(now):\n    return now != 0.0\n")
        assert rules_of(findings) == ["float-time-eq"]

    def test_ordering_comparison_allowed(self):
        assert lint("def f(sched, h):\n    return sched.now <= h\n") == []

    def test_unrelated_equality_allowed(self):
        assert lint("def f(a, b):\n    return a == b\n") == []


class TestDirectProtocolInstantiationRule:
    def test_direct_construction_flagged(self):
        findings = lint(
            "def f(dataset, server, rng):\n"
            "    return SocialTubeProtocol(dataset, server, rng)\n"
        )
        assert rules_of(findings) == ["direct-protocol-instantiation"]

    def test_attribute_chain_flagged(self):
        findings = lint(
            "import repro.core.socialtube as st\n"
            "def f(d, s, r):\n"
            "    return st.SocialTubeProtocol(d, s, r)\n"
        )
        assert "direct-protocol-instantiation" in rules_of(findings)

    def test_bare_typing_protocol_allowed(self):
        assert lint("from typing import Protocol\nX = Protocol\n") == []

    def test_registry_module_exempt(self):
        findings = lint(
            'def f(d, s, r):\n    """Doc."""\n    return NetTubeProtocol(d, s, r)\n',
            path="src/repro/experiments/registry.py",
        )
        assert findings == []

    def test_test_modules_exempt(self):
        source = "def f(d, s, r):\n    return NetTubeProtocol(d, s, r)\n"
        assert lint(source, path="tests/test_foo.py") == []
        assert lint(source, path="benchmarks/conftest.py") == []

    def test_create_protocol_allowed(self):
        assert (
            lint(
                "from repro.experiments.registry import create_protocol\n"
                "def f(d, s, r):\n"
                "    return create_protocol('socialtube', d, s, r)\n"
            )
            == []
        )

    def test_suppressible_per_line(self):
        source = (
            "def f(d, s, r):\n"
            "    return PaVodProtocol(d, s, r)"
            "  # lint: disable=direct-protocol-instantiation\n"
        )
        assert lint(source) == []


class TestSuppression:
    def test_disable_silences_named_rule(self):
        source = "import time\nt = time.time()  # lint: disable=wall-clock\n"
        assert lint(source) == []

    def test_disable_all_silences_everything(self):
        source = "import random\nrandom.seed(0)  # lint: disable=all\n"
        assert lint(source) == []

    def test_disable_other_rule_does_not_silence(self):
        source = "import time\nt = time.time()  # lint: disable=global-random\n"
        assert rules_of(lint(source)) == ["wall-clock"]

    def test_suppression_is_line_scoped(self):
        source = (
            "import time\n"
            "a = time.time()  # lint: disable=wall-clock\n"
            "b = time.time()\n"
        )
        findings = lint(source)
        assert rules_of(findings) == ["wall-clock"]
        assert findings[0].line == 3

    def test_empty_disable_list_reported(self):
        findings = lint("x = 1  # lint: disable=\n")
        assert rules_of(findings) == ["bad-suppression"]

    def test_docstring_mention_is_not_a_suppression(self):
        index = SuppressionIndex.from_source(
            '"""Docs: use ``# lint: disable=<rule>`` to silence."""\nx = 1\n'
        )
        assert index.suppressed_lines() == []
        assert index.malformed_lines == []

    def test_suppressed_count_in_report(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\nt = time.time()  # lint: disable=wall-clock\n")
        report = lint_paths([str(path)])
        assert report.ok
        assert report.suppressed == 1


class TestRunnerAndCli:
    def test_every_rule_has_a_description(self):
        for rule_id, description in RULE_DESCRIPTIONS.items():
            assert rule_id and description

    def test_missing_path_is_a_finding_not_a_crash(self, tmp_path):
        report = lint_paths([str(tmp_path / "no_such_file.py")])
        assert rules_of(report.findings) == ["io-error"]
        assert not report.ok

    def test_syntax_error_is_a_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = lint_paths([str(path)])
        assert rules_of(report.findings) == ["syntax-error"]

    def test_render_text_lists_locations(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import time\nt = time.time()\n")
        report = lint_paths([str(path)])
        text = render_text(report)
        assert f"{path}:2:" in text
        assert "wall-clock" in text

    def test_render_json_roundtrips(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import random\nrandom.seed(0)\n")
        payload = json.loads(render_json(lint_paths([str(path)])))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "global-random"
        assert payload["findings"][0]["line"] == 2

    def test_cli_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("def f(rng):\n    return rng.random()\n")
        assert main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_dirty_fixture_exits_nonzero(self, tmp_path, capsys):
        # The acceptance fixture: global seeding plus a wall-clock read.
        path = tmp_path / "dirty.py"
        path.write_text(
            "import random\nimport time\nrandom.seed(0)\nstart = time.time()\n"
        )
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "global-random" in out
        assert "wall-clock" in out

    def test_cli_json_format_is_structured(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("import random\nrandom.seed(0)\n")
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = [f["rule"] for f in payload["findings"]]
        assert rules == ["global-random"]

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_DESCRIPTIONS:
            assert rule_id in out

    def test_cli_default_target_is_source_tree(self, capsys):
        # No paths -> lints the installed package, which must be clean.
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "--format", "yaml"])


class TestMissingPublicDocstringRule:
    SOURCE = (
        "class Foo:\n"
        "    def bar(self):\n"
        "        pass\n"
        "\n"
        "def baz():\n"
        "    pass\n"
    )

    def test_api_surface_files_checked(self):
        findings = lint(self.SOURCE, path="src/repro/obs/tracer.py")
        assert rules_of(findings) == ["missing-public-docstring"]
        assert len(findings) == 3  # class, method, function

    def test_spec_and_registry_opted_in(self):
        for path in (
            "src/repro/experiments/spec.py",
            "src/repro/experiments/registry.py",
        ):
            assert len(lint(self.SOURCE, path=path)) == 3

    def test_every_obs_module_is_in_scope(self):
        """The /obs/ entry covers the whole package roster -- the
        timeseries/report/baseline modules are held to the rule just
        like tracer/export, and future obs modules will be too."""
        for path in (
            "src/repro/obs/timeseries.py",
            "src/repro/obs/report.py",
            "src/repro/obs/baseline.py",
            "src/repro/obs/export.py",
            "src/repro/obs/anything_added_later.py",
        ):
            findings = lint(self.SOURCE, path=path)
            assert rules_of(findings) == ["missing-public-docstring"], path
            assert len(findings) == 3, path

    def test_other_modules_not_checked(self):
        assert lint(self.SOURCE, path="src/repro/metrics/collectors.py") == []

    def test_documented_defs_pass(self):
        source = (
            'class Foo:\n'
            '    """Doc."""\n'
            '\n'
            '    def bar(self):\n'
            '        """Doc."""\n'
            '\n'
            'def baz():\n'
            '    """Doc."""\n'
        )
        assert lint(source, path="src/repro/obs/tracer.py") == []

    def test_private_names_exempt(self):
        source = "def _helper():\n    pass\n\nclass _Hidden:\n    pass\n"
        assert lint(source, path="src/repro/obs/export.py") == []

    def test_nested_functions_exempt(self):
        source = (
            'def outer():\n'
            '    """Doc."""\n'
            '    def inner():\n'
            '        pass\n'
        )
        assert lint(source, path="src/repro/obs/tracer.py") == []

    def test_per_line_suppression(self):
        source = (
            "def baz():  # lint: disable=missing-public-docstring\n"
            "    pass\n"
        )
        assert lint(source, path="src/repro/obs/tracer.py") == []
