"""Unit tests for probe-traffic accounting."""

import pytest

from repro.overlay.maintenance import (
    DEFAULT_PROBE_PERIOD_S,
    compare_probe_traffic,
    estimate_probe_traffic,
)


SOCIALTUBE_SERIES = [(i, 15.0) for i in range(1, 11)]
NETTUBE_SERIES = [(i, 5.0 * i) for i in range(1, 11)]


class TestEstimate:
    def test_flat_series(self):
        estimate = estimate_probe_traffic(
            "SocialTube", SOCIALTUBE_SERIES, session_duration_s=3000.0,
            probe_period_s=600.0,
        )
        assert estimate.mean_links == pytest.approx(15.0)
        assert estimate.probes_per_session == pytest.approx(15.0 * 5)
        assert estimate.probes_per_second == pytest.approx(75.0 / 3000.0)

    def test_growing_series_time_average(self):
        estimate = estimate_probe_traffic(
            "NetTube", NETTUBE_SERIES, session_duration_s=3000.0,
            probe_period_s=600.0,
        )
        assert estimate.mean_links == pytest.approx(27.5)

    def test_default_period_is_paper_value(self):
        assert DEFAULT_PROBE_PERIOD_S == 600.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(session_duration_s=0.0),
            dict(probe_period_s=0.0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(
            protocol="X",
            overhead_series=SOCIALTUBE_SERIES,
            session_duration_s=3000.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            estimate_probe_traffic(**base)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            estimate_probe_traffic("X", [], 3000.0)


class TestCompare:
    def test_sorted_cheapest_first(self):
        estimates = compare_probe_traffic(
            {"NetTube": NETTUBE_SERIES, "SocialTube": SOCIALTUBE_SERIES},
            session_duration_s=3000.0,
        )
        assert [e.protocol for e in estimates] == ["SocialTube", "NetTube"]

    def test_render(self):
        estimates = compare_probe_traffic(
            {"SocialTube": SOCIALTUBE_SERIES}, session_duration_s=3000.0
        )
        assert "SocialTube" in estimates[0].render()

    def test_from_real_run(self, smoke_config):
        from repro.experiments.runner import run_spec
        from repro.experiments.spec import ExperimentSpec

        result = run_spec(ExperimentSpec(protocol="socialtube", config=smoke_config))
        series = result.metrics.overhead_series()
        estimate = estimate_probe_traffic("SocialTube", series, 2000.0)
        assert estimate.probes_per_session > 0
