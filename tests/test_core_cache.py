"""Unit tests for the video cache and prefetch store."""

import pytest

from repro.core.cache import PrefetchStore, VideoCache
from repro.net.message import ChunkSource


class TestVideoCache:
    def test_unbounded_by_default(self):
        cache = VideoCache()
        for v in range(1000):
            cache.add(v)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            VideoCache(max_videos=0)

    def test_contains_and_iter(self):
        cache = VideoCache()
        cache.add(5)
        assert 5 in cache
        assert list(cache) == [5]

    def test_lru_eviction(self):
        cache = VideoCache(max_videos=2)
        cache.add(1)
        cache.add(2)
        evicted = cache.add(3)
        assert evicted == 1
        assert 1 not in cache and 2 in cache and 3 in cache
        assert cache.evictions == 1

    def test_re_add_refreshes_recency(self):
        cache = VideoCache(max_videos=2)
        cache.add(1)
        cache.add(2)
        cache.add(1)  # refresh
        evicted = cache.add(3)
        assert evicted == 2

    def test_touch(self):
        cache = VideoCache(max_videos=2)
        cache.add(1)
        cache.add(2)
        assert cache.touch(1) is True
        assert cache.add(3) == 2  # 1 was refreshed by touch
        assert cache.touch(99) is False

    def test_discard_and_clear(self):
        cache = VideoCache()
        cache.add(1)
        cache.discard(1)
        cache.discard(1)  # idempotent
        assert 1 not in cache
        cache.add(2)
        cache.clear()
        assert len(cache) == 0


class TestPrefetchStore:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PrefetchStore(capacity=0)

    def test_store_and_take(self):
        store = PrefetchStore(capacity=3)
        store.store(1, ChunkSource.PREFETCH_PEER, now=10.0)
        chunk = store.take(1)
        assert chunk is not None
        assert chunk.source is ChunkSource.PREFETCH_PEER
        assert chunk.fetched_at == 10.0
        assert 1 not in store

    def test_take_missing_counts_miss(self):
        store = PrefetchStore(capacity=3)
        assert store.take(1) is None
        assert store.misses == 1
        store.store(2, ChunkSource.PREFETCH_SERVER, 0.0)
        store.take(2)
        assert store.hits == 1
        assert store.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert PrefetchStore().hit_rate() == 0.0

    def test_duplicate_store_ignored(self):
        store = PrefetchStore(capacity=3)
        store.store(1, ChunkSource.PREFETCH_PEER, 1.0)
        store.store(1, ChunkSource.PREFETCH_SERVER, 2.0)
        assert store.take(1).source is ChunkSource.PREFETCH_PEER

    def test_capacity_evicts_oldest(self):
        store = PrefetchStore(capacity=2)
        store.store(1, ChunkSource.PREFETCH_PEER, 1.0)
        store.store(2, ChunkSource.PREFETCH_PEER, 2.0)
        store.store(3, ChunkSource.PREFETCH_PEER, 3.0)
        assert 1 not in store
        assert 2 in store and 3 in store

    def test_video_ids_oldest_first(self):
        store = PrefetchStore(capacity=5)
        for v, t in ((3, 1.0), (1, 2.0), (2, 3.0)):
            store.store(v, ChunkSource.PREFETCH_PEER, t)
        assert store.video_ids() == [3, 1, 2]

    def test_discard(self):
        store = PrefetchStore(capacity=2)
        store.store(1, ChunkSource.PREFETCH_PEER, 1.0)
        store.discard(1)
        assert 1 not in store
        # discard must not skew hit accounting
        assert store.hits == 0 and store.misses == 0
