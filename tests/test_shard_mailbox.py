"""Unit tests for the typed inter-shard mailbox."""

import pytest

from repro.shard.mailbox import (
    Mailbox,
    ShardMessage,
    ShardViolation,
    canonical_order,
)


class TestCanonicalOrder:
    def test_sorts_by_fire_time_then_origin_then_seq(self):
        messages = [
            ShardMessage(2.0, 1, 0, 0, "b"),
            ShardMessage(1.0, 2, 0, 5, "a"),
            ShardMessage(1.0, 0, 1, 9, "c"),
            ShardMessage(1.0, 0, 1, 3, "d"),
        ]
        ordered = canonical_order(messages)
        assert [m.kind for m in ordered] == ["d", "c", "a", "b"]
        assert [m.sort_key for m in ordered] == sorted(m.sort_key for m in messages)

    def test_order_ignores_insertion_interleaving(self):
        # Any interleaving of shard progress yields the same batch.
        mailbox_a = Mailbox(2)
        mailbox_a.send(0, 1, 5.0, "x")
        mailbox_a.send(1, 0, 3.0, "y")
        mailbox_b = Mailbox(2)
        mailbox_b.send(1, 0, 3.0, "y")
        mailbox_b.send(0, 1, 5.0, "x")
        assert mailbox_a.deliver_all() == mailbox_b.deliver_all()


class TestMailbox:
    def test_seq_counts_per_origin(self):
        mailbox = Mailbox(3)
        first = mailbox.send(0, 1, 1.0, "a")
        second = mailbox.send(2, 1, 1.0, "b")
        third = mailbox.send(0, 2, 2.0, "c")
        assert (first.seq, second.seq, third.seq) == (0, 0, 1)

    def test_deliver_all_drains_sorted(self):
        mailbox = Mailbox(2)
        mailbox.send(1, 0, 9.0, "late")
        mailbox.send(0, 1, 4.0, "early")
        batch = mailbox.deliver_all()
        assert [m.kind for m in batch] == ["early", "late"]
        assert mailbox.pending_count() == 0
        assert mailbox.delivered == 2

    def test_eager_send_never_buffers(self):
        mailbox = Mailbox(2)
        mailbox.send(0, 1, 1.0, "now", defer=False)
        assert mailbox.pending_count() == 0
        assert mailbox.delivered == 1
        assert mailbox.deliver_all() == []

    def test_violation_counted_when_lax(self):
        mailbox = Mailbox(2, strict=False)
        mailbox.send(0, 1, 3.0, "inside", window_end=5.0)
        assert mailbox.violations == 1
        assert mailbox.sent == 1  # still recorded

    def test_violation_raises_when_strict(self):
        mailbox = Mailbox(2, strict=True)
        with pytest.raises(ShardViolation):
            mailbox.send(0, 1, 3.0, "inside", window_end=5.0)
        assert mailbox.violations == 1

    def test_fire_at_window_end_is_legal(self):
        mailbox = Mailbox(2, strict=True)
        mailbox.send(0, 1, 5.0, "boundary", window_end=5.0)
        assert mailbox.violations == 0

    def test_summary_counters(self):
        mailbox = Mailbox(3)
        mailbox.send(0, 1, 1.0, "a")
        mailbox.send(0, 1, 2.0, "b")
        mailbox.send(2, 0, 3.0, "c")
        mailbox.deliver_all()
        summary = mailbox.summary()
        assert summary["sent"] == 3
        assert summary["delivered"] == 3
        assert summary["violations"] == 0
        assert summary["by_pair"] == [(0, 1, 2), (2, 0, 1)]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            Mailbox(0)
