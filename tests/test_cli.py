"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_compare_quick(self, capsys):
        assert main(["compare", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "SocialTube" in out
        assert "NetTube" in out
        assert "PA-VoD" in out
        assert "normalized peer bandwidth" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 15" in out
        assert "Fig 16a" in out
        assert "Fig 17a" in out
        assert "Fig 18a" in out
        assert "Table I" in out
        assert "shape checks" in out

    def test_seed_flag_changes_compare_output(self, capsys):
        main(["--seed", "1", "compare", "--quick"])
        first = capsys.readouterr().out
        main(["--seed", "2", "compare", "--quick"])
        second = capsys.readouterr().out
        assert first != second
