"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_compare_quick(self, capsys):
        assert main(["compare", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "SocialTube" in out
        assert "NetTube" in out
        assert "PA-VoD" in out
        assert "normalized peer bandwidth" in out

    def test_figures_quick(self, capsys):
        assert main(["figures", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 15" in out
        assert "Fig 16a" in out
        assert "Fig 17a" in out
        assert "Fig 18a" in out
        assert "Table I" in out
        assert "shape checks" in out

    def test_seed_flag_changes_compare_output(self, capsys):
        main(["--seed", "1", "compare", "--quick"])
        first = capsys.readouterr().out
        main(["--seed", "2", "compare", "--quick"])
        second = capsys.readouterr().out
        assert first != second

    def test_compare_multi_seed_prints_ci_table(self, capsys):
        assert main(["compare", "--quick", "--seeds", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out
        assert "Multi-seed aggregate over seeds [1, 2]" in out

    def test_compare_jobs_output_matches_serial(self, capsys):
        main(["compare", "--quick", "--seeds", "1,2", "--jobs", "1"])
        serial = capsys.readouterr().out
        main(["compare", "--quick", "--seeds", "1,2", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_single_seed_list_keeps_plain_output(self, capsys):
        # --seeds with one entry behaves like the classic single run.
        main(["--seed", "5", "compare", "--quick"])
        classic = capsys.readouterr().out
        main(["--seed", "5", "compare", "--quick", "--seeds", "5"])
        via_seeds = capsys.readouterr().out
        assert "95% CI" not in via_seeds
        assert classic == via_seeds

    def test_bad_seeds_rejected(self):
        with pytest.raises(SystemExit):
            main(["compare", "--quick", "--seeds", "1,x"])

    def test_figures_multi_seed_prints_ci_table(self, capsys):
        assert main(["figures", "--quick", "--seeds", "1,2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 17a" in out
        assert "Multi-seed aggregate" in out

    def test_shards_flag_output_matches_unsharded(self, capsys):
        main(["compare", "--quick"])
        unsharded = capsys.readouterr().out
        main(["compare", "--quick", "--shards", "4"])
        sharded = capsys.readouterr().out
        assert unsharded == sharded

    def test_workers_flag_output_matches_plain(self, capsys):
        # The worker count is byte-neutral by contract (docs/scaling.md);
        # CI's worker-parity job enforces the same diff at full scale.
        main(["compare", "--quick"])
        plain = capsys.readouterr().out
        main(["compare", "--quick", "--shards", "4", "--workers", "4"])
        pooled = capsys.readouterr().out
        assert plain == pooled

    def test_seed_accepted_after_subcommand(self, capsys):
        # The shared parent parses --seed in subcommand position without
        # clobbering the top-level default when absent.
        main(["--seed", "7", "compare", "--quick"])
        top_level = capsys.readouterr().out
        main(["compare", "--quick", "--seed", "7"])
        subcommand = capsys.readouterr().out
        assert top_level == subcommand

    def test_run_flags_shared_across_subcommands(self):
        # Every run-executing subcommand exposes the same flag spellings.
        import argparse

        from repro.cli import _run_flags_parent

        parent = _run_flags_parent()
        args = parent.parse_args(
            ["--seeds", "1,2", "--jobs", "2", "--shards", "4", "--workers", "2"]
        )
        assert (args.seeds, args.jobs, args.shards, args.workers) == ("1,2", 2, 4, 2)
        assert not hasattr(args, "seed")  # SUPPRESS: absent unless given
        assert parent.parse_args(["--seed", "9"]).seed == 9

    def test_regress_rejects_seed_sweeps(self):
        with pytest.raises(SystemExit):
            main(["regress", "--seeds", "1,2"])

    def test_single_run_commands_reject_multi_seed(self):
        with pytest.raises(SystemExit):
            main(["profile", "socialtube", "--seeds", "1,2"])
