"""The wall-clock perf layer: hash-neutral, inert-by-default, stable schema.

Four guarantees pinned here:

1. **Byte parity** -- arming a :class:`~repro.obs.perf.PerfMeter` (and,
   for pool runs, a :class:`~repro.obs.perf.PoolPerf`) changes no
   canonical byte: trace JSONL, metric rows and pool stats are
   identical armed vs unarmed, serially and across worker counts.
2. **Inert-path cost** -- the disabled ``if perf:`` guard stays under
   2% of run wall-clock, established constructively like
   ``tests/test_obs_overhead.py`` (per-guard cost measured in
   isolation x guards per event), not by noisy A/B run deltas.
3. **Report schema stability** -- the sidecar report's top-level keys
   are exactly ``PERF_REPORT_FIELDS`` at ``PERF_SCHEMA_VERSION``, its
   non-timing fields are deterministic, and the pool section carries
   exactly ``POOL_PERF_FIELDS``.
4. **Lint carve-out** -- ``repro.obs.perf`` may read the wall clock
   and nothing else may: the ``wall-clock`` rule stays silent for the
   sanctioned path and fires (high severity) everywhere else,
   including ``perf_report.py``.
"""

import time

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.experiments.trace_cache import shared_trace_cache
from repro.lint import lint_source
from repro.obs.export import trace_header, trace_to_jsonl_bytes
from repro.obs.perf import (
    NULL_PERF,
    POOL_PERF_FIELDS,
    PERF_SCHEMA_VERSION,
    PerfMeter,
    PoolPerf,
)
from repro.obs.perf_report import (
    PERF_REPORT_FIELDS,
    build_perf_report,
    perf_report_to_json_bytes,
    run_perf,
    run_pool_probe,
)
from repro.obs.tracer import Tracer


def _spec(shards: int = 1, workers: int = 1) -> ExperimentSpec:
    return ExperimentSpec(
        protocol="socialtube",
        config=SimulationConfig.smoke_scale(),
        shards=shards,
        workers=workers,
    )


def _trace_bytes(spec: ExperimentSpec, perf=None) -> bytes:
    dataset = shared_trace_cache.dataset_for(spec.config.trace)
    tracer = Tracer()
    if perf is not None:
        perf.attach(tracer)
    run_spec(spec, dataset=dataset, tracer=tracer, perf=perf)
    return trace_to_jsonl_bytes(
        trace_header(spec), tracer.rows(), tracer.counters(), tracer.histograms()
    )


class TestByteParity:
    def test_serial_trace_bytes_identical_armed_vs_unarmed(self):
        spec = _spec()
        unarmed = _trace_bytes(spec)
        armed = _trace_bytes(spec, perf=PerfMeter())
        assert armed == unarmed

    def test_sharded_trace_bytes_identical_armed_vs_unarmed(self):
        spec = _spec(shards=4)
        unarmed = _trace_bytes(spec)
        armed = _trace_bytes(spec, perf=PerfMeter())
        assert armed == unarmed

    def test_metric_rows_identical_armed_vs_unarmed(self):
        spec = _spec()
        dataset = shared_trace_cache.dataset_for(spec.config.trace)
        unarmed = run_spec(spec, dataset=dataset)
        armed = run_spec(spec, dataset=dataset, perf=PerfMeter())
        assert armed.render_rows() == unarmed.render_rows()

    def test_pool_rows_and_stats_identical_armed_vs_unarmed(self):
        for workers in (1, 2):
            spec = _spec(shards=2, workers=workers)
            unarmed = run_pool_probe(spec, horizon_s=30.0)
            armed = run_pool_probe(spec, perf=PoolPerf(), horizon_s=30.0)
            assert armed.rows == unarmed.rows
            assert armed.stats == unarmed.stats
            assert unarmed.perf is None
            assert armed.perf is not None


class TestInertOverhead:
    @staticmethod
    def _time_empty_loop(n: int) -> float:
        start = time.perf_counter()
        for _ in range(n):
            pass
        return time.perf_counter() - start

    @staticmethod
    def _time_guard_checks(n: int) -> float:
        perf = NULL_PERF
        start = time.perf_counter()
        for _ in range(n):
            if perf:
                perf.lane_event_begin()
        return time.perf_counter() - start

    def test_null_perf_is_falsy_and_noop(self):
        assert not NULL_PERF
        assert NULL_PERF.lane_event_begin() == 0.0
        NULL_PERF.lane_event_end(0, 0.0)
        NULL_PERF.run_begin()
        NULL_PERF.run_end(0)

    def test_disabled_guard_under_two_percent_of_run(self):
        spec = _spec()
        timings = []
        for _ in range(3):
            start = time.perf_counter()
            result = run_spec(spec)
            timings.append(time.perf_counter() - start)
        base_s = min(timings)
        events = result.events_processed

        batch = 200_000
        loop_s = min(self._time_empty_loop(batch) for _ in range(3)) / batch
        guard_s = max(
            0.0,
            min(self._time_guard_checks(batch) for _ in range(3)) / batch
            - loop_s,
        )
        # Two guards per processed event: the sharded scheduler's fire
        # pre/post hooks, the densest perf-guard placement in the tree
        # (the serial engine has only run-level guards, so this
        # over-counts for it).
        projected_s = 2 * events * guard_s
        assert projected_s < 0.02 * base_s, (
            f"disabled perf guards would add {projected_s:.4f}s over "
            f"{events} events to a {base_s:.4f}s run "
            f"({100 * projected_s / base_s:.2f}% > 2%)"
        )


class TestReportSchema:
    def test_report_keys_are_exactly_the_schema(self):
        run = run_perf(_spec(), top_k=5)
        assert set(run.report) == set(PERF_REPORT_FIELDS)
        assert run.report["schema"] == PERF_SCHEMA_VERSION

    def test_non_timing_fields_are_deterministic(self):
        spec = _spec()
        run = run_perf(spec, top_k=5)
        assert run.report["content_hash"] == spec.content_hash()
        assert run.report["protocol"] == "socialtube"
        assert run.report["environment"] == spec.environment
        assert run.report["seed"] == spec.seed
        assert run.report["shards"] == 1
        assert run.report["workers"] == 1
        assert run.report["pool"] is None
        engine = run.report["engine"]
        assert engine["events"] == run.result.events_processed
        # Hotspot *ranking* is by wall seconds (machine-dependent),
        # but each name's row count comes from the deterministic
        # trace: wherever two runs both rank a name, they must agree
        # on its row count.
        again = run_perf(spec, top_k=5)
        rows_by_name = {h["name"]: h["rows"] for h in run.report["hotspots"]}
        for hotspot in again.report["hotspots"]:
            if hotspot["name"] in rows_by_name:
                assert hotspot["rows"] == rows_by_name[hotspot["name"]]
        assert again.report["engine"]["rows"] == run.report["engine"]["rows"]

    def test_report_serializes_canonically(self):
        run = run_perf(_spec(), top_k=3)
        blob = perf_report_to_json_bytes(run.report)
        assert blob.endswith(b"\n")
        import json

        assert json.loads(blob) == run.report

    def test_pool_section_keys_are_exactly_the_schema(self):
        for workers in (1, 2):
            spec = _spec(shards=2, workers=workers)
            result = run_pool_probe(spec, perf=PoolPerf(), horizon_s=30.0)
            assert set(result.perf) == set(POOL_PERF_FIELDS)
            assert result.perf["workers"] == workers
            assert result.perf["execution"] == (
                "multiprocess" if workers > 1 else "in-process"
            )
            assert len(result.perf["lanes"]) == 2

    def test_build_report_with_pool(self):
        spec = _spec(shards=2, workers=2)
        meter = PerfMeter()
        meter.run_begin()
        meter.run_end(10)
        pool = run_pool_probe(spec, perf=PoolPerf(), horizon_s=30.0).perf
        result = run_spec(spec, dataset=shared_trace_cache.dataset_for(spec.config.trace))
        report = build_perf_report(spec, result, meter, pool=pool)
        assert set(report) == set(PERF_REPORT_FIELDS)
        assert report["pool"] == pool


class TestLintCarveOut:
    SOURCE = "import time\n\ndef now():\n    return time.perf_counter()\n"

    def test_perf_module_may_read_wall_clock(self):
        findings = lint_source(self.SOURCE, path="src/repro/obs/perf.py")
        assert not [f for f in findings if f.rule == "wall-clock"]

    def test_everything_else_may_not(self):
        for path in (
            "src/repro/obs/perf_report.py",
            "src/repro/sim/engine.py",
        ):
            findings = lint_source(self.SOURCE, path=path)
            found = [f for f in findings if f.rule == "wall-clock"]
            assert found, f"wall-clock must fire for {path}"
            assert all(f.severity == "high" for f in found)
