"""The baseline regression gate: bands, drift detection, update path.

Determinism makes the expected drift exactly zero, so the interesting
behaviour is at the edges: the tolerance-band boundary, a perturbed
committed value (the gate must fail loudly, naming the metric and the
observed-vs-allowed delta), a renamed metric, a stale content hash,
and the ``--update`` bootstrap.  One fresh capture per module keeps
this inside the tier-1 budget.
"""

import json

import pytest

from repro.obs.baseline import (
    CHAOS_METRICS,
    DEFAULT_TOLERANCES,
    Deviation,
    baseline_path,
    capture_baseline,
    compare_to_baseline,
    load_baselines,
    run_regression,
    spec_for_baseline,
    write_baseline,
)

# ---------------------------------------------------------------------------
# band arithmetic


def test_deviation_band_is_abs_plus_rel():
    deviation = Deviation(
        metric="x", baseline=200.0, observed=212.0, abs_tol=2.0, rel_tol=0.05
    )
    assert deviation.delta == 12.0
    assert deviation.allowed == 12.0
    assert deviation.ok  # exactly on the band edge still passes


def test_deviation_just_outside_band_fails():
    deviation = Deviation(
        metric="x", baseline=200.0, observed=212.001, abs_tol=2.0, rel_tol=0.05
    )
    assert not deviation.ok
    line = deviation.render()
    assert "FAIL" in line and "x" in line


def test_deviation_render_shows_drift_and_allowance():
    line = Deviation(
        metric="startup_delay_ms_mean",
        baseline=100.0,
        observed=90.0,
        abs_tol=1.0,
        rel_tol=0.05,
    ).render()
    assert "startup_delay_ms_mean" in line
    assert "drift=" in line and "allowed=" in line
    assert "-10.0000" in line and "6.0000" in line


def test_compare_unions_metric_names():
    """A renamed or dropped metric cannot silently pass the gate."""
    baseline = {"metrics": {"old_name": 5.0}}
    fresh = {"metrics": {"new_name": 5.0}}
    deviations = {d.metric: d for d in compare_to_baseline(baseline, fresh)}
    assert set(deviations) == {"old_name", "new_name"}
    assert not deviations["old_name"].ok  # 5.0 -> 0.0
    assert not deviations["new_name"].ok  # 0.0 -> 5.0


# ---------------------------------------------------------------------------
# capture + the gate end to end (one smoke run, reused)


@pytest.fixture(scope="module")
def payload():
    return capture_baseline("socialtube", scale="smoke")


def test_capture_payload_shape(payload):
    assert payload["protocol"] == "socialtube"
    assert payload["scale"] == "smoke"
    assert len(payload["series_digest"]) == 64
    assert payload["num_windows"] > 0
    # fault-free captures carry every banded metric except the
    # chaos-only recovery set (those appear only under a fault plan)
    assert set(payload["metrics"]) == set(DEFAULT_TOLERANCES) - set(CHAOS_METRICS)


def test_spec_roundtrips_through_payload(payload):
    spec = spec_for_baseline(payload)
    assert spec.content_hash() == payload["content_hash"]


def test_write_load_roundtrip(tmp_path, payload):
    path = write_baseline(baseline_path(str(tmp_path), payload), payload)
    assert path.endswith("baseline_socialtube_peersim.json")
    entries = load_baselines(str(tmp_path))
    assert entries == [(path, payload)]


def test_regress_passes_on_fresh_baseline(tmp_path, payload, capsys):
    write_baseline(baseline_path(str(tmp_path), payload), payload)
    assert run_regression(baseline_dir=str(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "within tolerance" in out
    assert "series digest ok" in out


def test_regress_fails_on_perturbed_metric(tmp_path, payload, capsys):
    """The advertised demonstration: nudge one committed value past
    its band and the gate exits non-zero, naming the metric and the
    observed-vs-allowed delta."""
    perturbed = json.loads(json.dumps(payload))
    perturbed["metrics"]["startup_delay_ms_mean"] *= 1.5
    write_baseline(baseline_path(str(tmp_path), perturbed), perturbed)
    assert run_regression(baseline_dir=str(tmp_path)) == 1
    out = capsys.readouterr().out
    line = next(
        l for l in out.splitlines()
        if "startup_delay_ms_mean" in l and "FAIL" in l
    )
    assert "drift=" in line and "allowed=" in line


def test_regress_fails_on_content_hash_mismatch(tmp_path, payload, capsys):
    stale = json.loads(json.dumps(payload))
    stale["content_hash"] = "0" * 64
    write_baseline(baseline_path(str(tmp_path), stale), stale)
    assert run_regression(baseline_dir=str(tmp_path)) == 1
    assert "content_hash mismatch" in capsys.readouterr().out


def test_series_digest_drift_warns_unless_strict(tmp_path, payload, capsys):
    drifted = json.loads(json.dumps(payload))
    drifted["series_digest"] = "f" * 64
    write_baseline(baseline_path(str(tmp_path), drifted), drifted)
    assert run_regression(baseline_dir=str(tmp_path)) == 0
    assert "warn series digest drift" in capsys.readouterr().out
    assert run_regression(baseline_dir=str(tmp_path), strict=True) == 1
    assert "FAIL series digest drift" in capsys.readouterr().out


def test_regress_update_bootstraps_empty_dir(tmp_path, payload, capsys):
    code = run_regression(
        baseline_dir=str(tmp_path), update=True, protocols=("socialtube",)
    )
    assert code == 0
    entries = load_baselines(str(tmp_path))
    assert len(entries) == 1
    # the bootstrap capture matches the module fixture byte for byte
    assert entries[0][1] == payload


def test_regress_without_baselines_demands_update(tmp_path, capsys):
    assert run_regression(baseline_dir=str(tmp_path / "missing")) == 1
    assert "--update" in capsys.readouterr().out


def test_quick_filters_to_smoke_scale(tmp_path, payload, capsys):
    other = json.loads(json.dumps(payload))
    other["scale"] = "default"
    other["protocol"] = "nettube"
    write_baseline(baseline_path(str(tmp_path), payload), payload)
    write_baseline(baseline_path(str(tmp_path), other), other)
    assert run_regression(baseline_dir=str(tmp_path), quick=True) == 0
    out = capsys.readouterr().out
    assert "socialtube/peersim" in out
    assert "nettube" not in out
