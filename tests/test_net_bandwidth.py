"""Unit tests for the processor-sharing upload links."""

import pytest

from repro.net.bandwidth import BandwidthError, SharedUploadLink


class TestSharedUploadLink:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(BandwidthError):
            SharedUploadLink(0)
        with pytest.raises(BandwidthError):
            SharedUploadLink(-1)

    def test_sole_transfer_gets_full_capacity(self):
        link = SharedUploadLink(1_000_000)
        grant = link.admit()
        assert grant.rate_bps == pytest.approx(1_000_000)

    def test_share_splits_evenly(self):
        link = SharedUploadLink(1_000_000)
        g1 = link.admit()
        g2 = link.admit()
        assert g1.rate_bps == pytest.approx(1_000_000)  # fixed at admission
        assert g2.rate_bps == pytest.approx(500_000)

    def test_current_share_reflects_load(self):
        link = SharedUploadLink(900_000)
        assert link.current_share_bps == pytest.approx(900_000)
        link.admit()
        assert link.current_share_bps == pytest.approx(450_000)

    def test_release_frees_slot(self):
        link = SharedUploadLink(1_000_000)
        grant = link.admit()
        assert link.active_transfers == 1
        grant.release()
        assert link.active_transfers == 0

    def test_release_idempotent(self):
        link = SharedUploadLink(1_000_000)
        grant = link.admit()
        grant.release()
        grant.release()
        assert link.active_transfers == 0

    def test_time_for_bits(self):
        link = SharedUploadLink(2_000_000)
        grant = link.admit()
        assert grant.time_for_bits(1_000_000) == pytest.approx(0.5)

    def test_time_for_negative_bits_rejected(self):
        grant = SharedUploadLink(1.0).admit()
        with pytest.raises(BandwidthError):
            grant.time_for_bits(-1)

    def test_negative_admit_bits_rejected(self):
        with pytest.raises(BandwidthError):
            SharedUploadLink(1.0).admit(bits=-5)

    def test_overload_slows_newcomers(self):
        # The Fig 17 mechanism: a saturated server gives each newcomer a
        # tiny share, so the startup-buffer transfer takes seconds.
        link = SharedUploadLink(10_000_000)
        for _ in range(99):
            link.admit()
        slow = link.admit()
        assert slow.rate_bps == pytest.approx(100_000)
        assert slow.time_for_bits(640_000) == pytest.approx(6.4)

    def test_accounting_counters(self):
        link = SharedUploadLink(1_000_000)
        link.admit(bits=100.0)
        link.admit(bits=200.0)
        assert link.total_admitted == 2
        assert link.total_bits_served == pytest.approx(300.0)

    def test_utilization_hint(self):
        link = SharedUploadLink(1_000_000)
        assert link.utilization_hint() == 0.0
        grants = [link.admit() for _ in range(3)]
        assert link.utilization_hint() == 3.0
        grants[0].release()
        assert link.utilization_hint() == 2.0
