"""Windowed time-series contract: identity, window math, overhead.

The tentpole claims (DESIGN.md discipline, ISSUE 4):

* the live sink and the JSONL replay produce byte-identical tables,
  whether the exported trace came from a serial or a pooled run;
* window assignment is pure ``t // window_s`` arithmetic -- boundary
  rows open the next window, silent gaps flush empty windows, gauges
  carry forward across flushes;
* the streaming collector stays under 5% of the traced run's
  wall-clock (the run collection rides on), asserted constructively
  from measured factors like ``tests/test_obs_overhead.py`` does.
"""

import time

import pytest

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_spec
from repro.experiments.spec import ExperimentSpec
from repro.obs.export import run_profiled
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    TimeSeriesCollector,
    run_with_timeseries,
    series_from_trace,
)
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def spec():
    return ExperimentSpec(
        protocol="socialtube", config=SimulationConfig.smoke_scale()
    )


@pytest.fixture(scope="module")
def live_run(spec):
    return run_with_timeseries(spec, window_s=DEFAULT_WINDOW_S)


# ---------------------------------------------------------------------------
# live vs replay byte identity


def test_replay_matches_live_bytes(live_run):
    replayed = series_from_trace(live_run.jsonl, window_s=DEFAULT_WINDOW_S)
    assert replayed.to_canonical_json() == live_run.table.to_canonical_json()
    assert replayed.digest() == live_run.table.digest()


def test_pooled_and_serial_traces_replay_identically(spec):
    """Traces exported through the jobs=1 and jobs=2 profile paths
    replay to byte-identical tables -- worker layout is invisible.
    (These runs carry no ``engine.tick`` gauge rows, so they are
    compared to each other, not to the tick-enabled live run.)"""
    serial = series_from_trace(run_profiled(spec, jobs=1).jsonl)
    pooled = series_from_trace(run_profiled(spec, jobs=2).jsonl)
    assert pooled.to_canonical_json() == serial.to_canonical_json()


def test_repeat_live_runs_are_identical(spec, live_run):
    again = run_with_timeseries(spec, window_s=DEFAULT_WINDOW_S)
    assert again.table.to_canonical_json() == live_run.table.to_canonical_json()


def test_content_hash_recorded(spec, live_run):
    assert live_run.table.content_hash == spec.content_hash()
    replayed = series_from_trace(live_run.jsonl)
    assert replayed.content_hash == spec.content_hash()


def test_series_show_warmup_trend(live_run):
    """The paper's headline trend: the server share of chunk supply
    falls as overlays warm up (Figs 9-11)."""
    share = live_run.table.series("server_share")
    assert len(share) >= 3
    early = sum(share[:2]) / 2
    late = sum(share[-2:]) / 2
    assert late < early


# ---------------------------------------------------------------------------
# window math on synthetic rows


def _event(t, name, **attrs):
    return {"kind": "event", "t": t, "name": name, "attrs": attrs}


def test_window_assignment_and_boundaries():
    collector = TimeSeriesCollector(window_s=10.0)
    collector.observe_row(_event(0.0, "playback.stall"))
    collector.observe_row(_event(9.999, "playback.stall"))
    # exactly on the boundary -> next window
    collector.observe_row(_event(10.0, "playback.stall"))
    table = collector.finalize()
    assert table.num_windows == 2
    assert table.series("stall_events") == [2, 1]
    assert table.series("t0") == [0.0, 10.0]


def test_gap_windows_are_flushed_empty():
    collector = TimeSeriesCollector(window_s=10.0)
    collector.observe_row(_event(1.0, "session.begin", active=1))
    collector.observe_row(_event(45.0, "playback.stall"))
    table = collector.finalize()
    assert table.num_windows == 5
    assert table.series("joins") == [1, 0, 0, 0, 0]
    assert table.series("stall_events") == [0, 0, 0, 0, 1]
    # gauges carry forward across empty windows
    assert table.series("active_sessions") == [1, 1, 1, 1, 1]


def test_counter_and_rate_folding():
    collector = TimeSeriesCollector(window_s=100.0)
    collector.observe_row(_event(1.0, "transfer.chunks", source="server", chunks=3))
    collector.observe_row(_event(2.0, "transfer.chunks", source="peer", chunks=6))
    collector.observe_row(
        _event(3.0, "transfer.chunks", source="prefetch_peer", chunks=3)
    )
    collector.observe_row(_event(4.0, "transfer.chunks", source="cache", chunks=5))
    collector.observe_row(_event(5.0, "playback.report", startup_s=0.25, stalls=0))
    collector.observe_row(_event(6.0, "playback.report", startup_s=0.75, stalls=2))
    collector.observe_row(_event(7.0, "flood.found", depth=3))
    collector.observe_row(_event(8.0, "flood.found", depth=1))
    collector.observe_row(_event(9.0, "flood.ttl_exhausted"))
    collector.observe_row(_event(10.0, "server.lookup"))
    collector.observe_row(_event(11.0, "server.request", bits=1.0))
    (record,) = collector.finalize().windows
    assert record["server_chunks"] == 3
    assert record["peer_chunks"] == 9
    assert record["cache_chunks"] == 5
    assert record["server_share"] == 3 / 12
    assert record["startup_ms_mean"] == 500.0
    assert record["stall_rate"] == 0.5
    assert record["search_hops_mean"] == 2.0
    assert record["ttl_exhausted"] == 1
    assert record["tracker_lookups"] == 1
    assert record["server_requests"] == 1


def test_overlay_links_gauge_folds_deltas():
    collector = TimeSeriesCollector(window_s=10.0)
    collector.observe_row(_event(1.0, "overlay.links", node=1, links=4))
    collector.observe_row(_event(2.0, "overlay.links", node=2, links=3))
    collector.observe_row(_event(12.0, "overlay.links", node=1, links=2))
    table = collector.finalize()
    assert table.series("overlay_links") == [7, 5]


def test_cluster_request_accounting():
    collector = TimeSeriesCollector(window_s=10.0)
    collector.observe_row(
        {"kind": "span_begin", "t": 1.0, "name": "request.serve",
         "attrs": {"cluster": 2}}
    )
    collector.observe_row(
        {"kind": "span_begin", "t": 2.0, "name": "request.serve",
         "attrs": {"cluster": 10}}
    )
    collector.observe_row(
        {"kind": "span_begin", "t": 12.0, "name": "request.serve",
         "attrs": {"cluster": 2}}
    )
    table = collector.finalize()
    assert table.series("requests") == [2, 1]
    assert table.cluster_ids() == ["2", "10"]  # numeric, not lexicographic
    assert table.cluster_series("2") == [1, 1]
    assert table.cluster_series("10") == [1, 0]


def test_span_end_and_unknown_rows_ignored():
    collector = TimeSeriesCollector(window_s=10.0)
    collector.observe_row({"kind": "span_end", "t": 1.0, "name": "request.serve"})
    collector.observe_row(_event(2.0, "flood.hop", node=3))
    collector.observe_row({"kind": "counter", "name": "x", "value": 1.0})
    table = collector.finalize()
    assert table.num_windows == 0


def test_empty_stream_yields_empty_table():
    table = TimeSeriesCollector(window_s=10.0).finalize(content_hash="abc")
    assert table.num_windows == 0
    assert table.content_hash == "abc"
    assert table.cluster_ids() == []


def test_window_s_must_be_positive():
    with pytest.raises(ValueError):
        TimeSeriesCollector(window_s=0.0)
    with pytest.raises(ValueError):
        TimeSeriesCollector(window_s=-5.0)


# ---------------------------------------------------------------------------
# overhead bound


def test_collection_overhead_under_five_percent(spec):
    """The streaming sink adds <5% to the traced run it rides on.

    Constructive, like the disabled-tracer bound: measure the traced
    run's wall-clock (denominator, best-of-2), then the cost of
    feeding every one of that run's rows through a fresh collector
    (numerator, best-of-3), and compare the measured factors.
    """
    timings = []
    rows = None
    for _ in range(2):
        tracer = Tracer()
        start = time.perf_counter()
        run_spec(spec, tracer=tracer)
        timings.append(time.perf_counter() - start)
        rows = tracer.rows()
    traced_s = min(timings)

    feed_s = float("inf")
    for _ in range(3):
        collector = TimeSeriesCollector(window_s=DEFAULT_WINDOW_S)
        sink = collector.observe_row
        start = time.perf_counter()
        for row in rows:
            sink(row)
        feed_s = min(feed_s, time.perf_counter() - start)

    assert feed_s < 0.05 * traced_s, (
        f"collector fed {len(rows)} rows in {feed_s:.4f}s against a "
        f"{traced_s:.4f}s traced run "
        f"({100 * feed_s / traced_s:.2f}% > 5%)"
    )
