"""Unit tests for link-set / link-table management."""

import random

import pytest

from repro.overlay.links import LinkSet, LinkTable


class TestLinkSet:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LinkSet(0)

    def test_add_and_contains(self):
        links = LinkSet(3)
        links.add(1)
        assert 1 in links
        assert len(links) == 1

    def test_duplicate_add_is_noop(self):
        links = LinkSet(3)
        links.add(1)
        assert links.add(1) is None
        assert len(links) == 1

    def test_full_add_raises_without_evict(self):
        links = LinkSet(1)
        links.add(1)
        with pytest.raises(OverflowError):
            links.add(2)

    def test_evict_drops_oldest(self):
        links = LinkSet(2)
        links.add(1)
        links.add(2)
        evicted = links.add(3, evict=True)
        assert evicted == 1
        assert links.members() == [2, 3]

    def test_try_add(self):
        links = LinkSet(1)
        assert links.try_add(1) is True
        assert links.try_add(1) is True  # already present
        assert links.try_add(2) is False  # full

    def test_remove(self):
        links = LinkSet(2)
        links.add(1)
        assert links.remove(1) is True
        assert links.remove(1) is False

    def test_is_full(self):
        links = LinkSet(2)
        assert not links.is_full
        links.add(1)
        links.add(2)
        assert links.is_full

    def test_members_order_is_insertion(self):
        links = LinkSet(5)
        for n in (5, 3, 9):
            links.add(n)
        assert links.members() == [5, 3, 9]

    def test_random_member(self):
        links = LinkSet(3)
        assert links.random_member(random.Random(0)) is None
        links.add(7)
        assert links.random_member(random.Random(0)) == 7

    def test_clear(self):
        links = LinkSet(3)
        links.add(1)
        links.clear()
        assert len(links) == 0


class TestLinkTable:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LinkTable(0)

    def test_connect_is_symmetric(self):
        table = LinkTable(3)
        assert table.connect(1, 2)
        assert table.connected(1, 2)
        assert table.connected(2, 1)
        assert table.degree(1) == table.degree(2) == 1

    def test_self_link_rejected(self):
        table = LinkTable(3)
        with pytest.raises(ValueError):
            table.connect(1, 1)

    def test_connect_existing_is_true(self):
        table = LinkTable(3)
        table.connect(1, 2)
        assert table.connect(1, 2) is True
        assert table.degree(1) == 1

    def test_connect_refused_when_either_full(self):
        table = LinkTable(1)
        table.connect(1, 2)
        assert table.connect(1, 3) is False  # node 1 full
        assert table.connect(3, 2) is False  # node 2 full

    def test_connect_with_evict_keeps_symmetry(self):
        table = LinkTable(1)
        table.connect(1, 2)
        assert table.connect(1, 3, evict=True) is True
        # Node 1 evicted its link to 2; node 2 must not still list 1.
        assert not table.connected(2, 1)
        assert table.connected(1, 3)
        assert table.degree(2) == 0

    def test_disconnect(self):
        table = LinkTable(3)
        table.connect(1, 2)
        table.disconnect(1, 2)
        assert table.degree(1) == 0
        assert table.degree(2) == 0

    def test_drop_all_notifies_neighbors(self):
        table = LinkTable(3)
        table.connect(1, 2)
        table.connect(1, 3)
        table.drop_all(1)
        assert table.degree(1) == 0
        assert not table.connected(2, 1)
        assert not table.connected(3, 1)

    def test_neighbors_list(self):
        table = LinkTable(3)
        table.connect(1, 2)
        table.connect(1, 3)
        assert set(table.neighbors(1)) == {2, 3}
        assert table.neighbors(99) == []

    def test_total_links(self):
        table = LinkTable(3)
        table.connect(1, 2)
        table.connect(2, 3)
        assert table.total_links() == 2

    def test_degree_never_exceeds_capacity_without_evict(self):
        table = LinkTable(2)
        rng = random.Random(0)
        for _ in range(100):
            a, b = rng.randrange(10), rng.randrange(10)
            if a != b:
                table.connect(a, b)
        assert all(table.degree(n) <= 2 for n in range(10))
