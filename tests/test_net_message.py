"""Unit tests for message/result records."""

from repro.net.message import ChunkSource, LookupResult


class TestChunkSource:
    def test_peer_sources(self):
        assert ChunkSource.PEER.is_peer
        assert ChunkSource.PREFETCH_PEER.is_peer

    def test_non_peer_sources(self):
        assert not ChunkSource.SERVER.is_peer
        assert not ChunkSource.PREFETCH_SERVER.is_peer
        assert not ChunkSource.CACHE.is_peer

    def test_cache_excluded_from_bandwidth(self):
        assert not ChunkSource.CACHE.counts_for_bandwidth
        assert ChunkSource.PEER.counts_for_bandwidth
        assert ChunkSource.SERVER.counts_for_bandwidth


class TestLookupResult:
    def test_peer_result(self):
        result = LookupResult(video_id=1, provider_id=42, hops=2)
        assert result.from_peer
        assert not result.from_server
        assert not result.from_cache

    def test_server_result(self):
        result = LookupResult(video_id=1, from_server=True)
        assert not result.from_peer

    def test_cache_result(self):
        result = LookupResult(video_id=1, from_cache=True)
        assert not result.from_peer

    def test_describe_mentions_level(self):
        inner = LookupResult(video_id=1, provider_id=2, hops=1)
        inter = LookupResult(video_id=1, provider_id=2, hops=1, via_inter_link=True)
        assert "inner-link" in inner.describe()
        assert "inter-link" in inter.describe()

    def test_describe_cache_and_server(self):
        assert "cache" in LookupResult(video_id=1, from_cache=True).describe()
        assert "server" in LookupResult(video_id=1, from_server=True).describe()
