"""Unit tests for the span/event/counter tracer primitives."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    Tracer,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestNullTracer:
    def test_falsy(self):
        assert not NULL_TRACER
        assert bool(NULL_TRACER) is False
        assert NULL_TRACER.enabled is False

    def test_all_methods_are_noops(self):
        NULL_TRACER.bind_clock(lambda: 1.0)
        with NULL_TRACER.span("x", a=1):
            NULL_TRACER.event("y", b=2)
        assert NULL_TRACER.begin("z") is None
        assert NULL_TRACER.begin_detached("z") is None
        NULL_TRACER.end(None)
        NULL_TRACER.count("c")
        NULL_TRACER.observe("h", 3.0)

    def test_shared_singleton_holds_no_state(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not hasattr(NULL_TRACER, "__dict__")


class TestSpans:
    def test_span_records_begin_and_end(self, tracer, clock):
        clock.now = 5.0
        with tracer.span("phase", node=1):
            clock.now = 7.5
        begin, end = tracer.rows()
        assert begin == {
            "t": 5.0, "kind": "span_begin", "name": "phase", "span": 0,
            "attrs": {"node": 1},
        }
        assert end == {"t": 7.5, "kind": "span_end", "span": 0, "dur": 2.5}

    def test_nesting_records_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf")
        rows = tracer.rows()
        inner_begin = rows[1]
        leaf = rows[2]
        assert inner_begin["parent"] == 0
        assert leaf["parent"] == 1

    def test_explicit_begin_end(self, tracer, clock):
        sid = tracer.begin("work")
        clock.now = 3.0
        tracer.end(sid, items=4)
        end = tracer.rows()[-1]
        assert end["dur"] == 3.0
        assert end["attrs"] == {"items": 4}
        assert tracer.open_spans() == 0

    def test_detached_span_not_on_stack(self, tracer):
        sid = tracer.begin_detached("stream", node=9)
        tracer.event("unrelated")
        assert "parent" not in tracer.rows()[-1]
        tracer.end(sid)
        assert tracer.open_spans() == 0

    def test_detached_span_records_parent_at_begin(self, tracer):
        with tracer.span("outer"):
            sid = tracer.begin_detached("stream")
        tracer.end(sid)
        assert tracer.rows()[1]["parent"] == 0

    def test_end_none_is_noop(self, tracer):
        tracer.end(None)
        assert tracer.rows() == []

    def test_span_ids_monotonic(self, tracer):
        ids = [tracer.begin(f"s{i}") for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_out_of_order_end(self, tracer):
        a = tracer.begin_detached("a")
        b = tracer.begin_detached("b")
        tracer.end(a)
        tracer.end(b)
        assert tracer.open_spans() == 0


class TestEventsCountersHistograms:
    def test_event_row_shape(self, tracer, clock):
        clock.now = 2.0
        tracer.event("tick", node=3)
        assert tracer.rows() == [
            {"t": 2.0, "kind": "event", "name": "tick", "attrs": {"node": 3}}
        ]

    def test_counters_accumulate(self, tracer):
        tracer.count("reqs")
        tracer.count("reqs", 2)
        assert tracer.counters() == {"reqs": 3}
        assert tracer.rows() == []  # counters are aggregates, not rows

    def test_histograms_collect(self, tracer):
        tracer.observe("lat", 1.5)
        tracer.observe("lat", 2.5)
        assert tracer.histograms() == {"lat": [1.5, 2.5]}

    def test_readouts_are_copies(self, tracer):
        tracer.event("x")
        tracer.rows().clear()
        assert len(tracer.rows()) == 1


class TestClockBinding:
    def test_bind_clock_rebinds(self, tracer):
        tracer.bind_clock(lambda: 42.0)
        tracer.event("x")
        assert tracer.rows()[0]["t"] == 42.0

    def test_default_clock_is_zero(self):
        t = Tracer()
        t.event("x")
        assert t.rows()[0]["t"] == 0.0


def test_schema_version_is_int():
    assert isinstance(TRACE_SCHEMA_VERSION, int)
    assert TRACE_SCHEMA_VERSION >= 1
