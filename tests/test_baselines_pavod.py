"""Unit tests for the PA-VoD baseline."""

import pytest

from helpers import make_protocol
from repro.baselines.pavod import PaVodProtocol


@pytest.fixture()
def proto(tiny_dataset):
    protocol, _server = make_protocol(PaVodProtocol, tiny_dataset)
    protocol.now_fn = lambda: protocol._test_now
    protocol._test_now = 0.0
    return protocol


VIDEO = 0


class TestNoCacheNoLinks:
    def test_no_cache_kept(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        proto.on_watch_finished(1, VIDEO)
        assert not proto.state(1).has_video(VIDEO)

    def test_link_count_always_zero(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.link_count(1) == 0


class TestWatcherProviding:
    def test_no_watchers_server_serves(self, proto):
        proto.on_session_start(1)
        assert proto.locate(1, VIDEO).from_server

    def test_fresh_watcher_cannot_serve(self, proto, tiny_dataset):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto._test_now = 0.0
        proto.on_watch_started(2, VIDEO)
        # Node 2 just started: its own download is incomplete.
        result = proto.locate(1, VIDEO)
        assert result.from_server

    def test_progressed_watcher_serves(self, proto, tiny_dataset):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto._test_now = 0.0
        proto.on_watch_started(2, VIDEO)
        # Advance past length/speedup: download complete.
        proto._test_now = tiny_dataset.video_length(VIDEO)
        result = proto.locate(1, VIDEO)
        assert result.from_peer
        assert result.provider_id == 2

    def test_finished_watcher_stops_providing(self, proto, tiny_dataset):
        proto.on_session_start(1)
        proto.on_session_start(2)
        proto.on_watch_started(2, VIDEO)
        proto._test_now = tiny_dataset.video_length(VIDEO)
        proto.on_watch_finished(2, VIDEO)
        assert proto.locate(1, VIDEO).from_server

    def test_session_end_clears_current_watch(self, proto, tiny_dataset):
        proto.on_session_start(2)
        proto.on_watch_started(2, VIDEO)
        proto._test_now = tiny_dataset.video_length(VIDEO)
        proto.on_session_end(2)
        proto.on_session_start(1)
        assert proto.locate(1, VIDEO).from_server

    def test_referral_samples_bounded(self, proto, tiny_dataset):
        proto.on_session_start(0)
        for node in range(1, 10):
            proto.on_session_start(node)
            proto.on_watch_started(node, VIDEO)
        proto._test_now = tiny_dataset.video_length(VIDEO)
        result = proto.locate(0, VIDEO)
        assert result.from_peer
        assert result.peers_contacted <= proto.watchers_per_referral


class TestPrefetch:
    def test_no_prefetching(self, proto):
        proto.on_session_start(1)
        proto.on_watch_started(1, VIDEO)
        assert proto.select_prefetch(1, VIDEO, 3) == []


class TestValidation:
    def test_invalid_parameters_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            make_protocol(PaVodProtocol, tiny_dataset, watchers_per_referral=0)
        with pytest.raises(ValueError):
            make_protocol(PaVodProtocol, tiny_dataset, download_speedup=0)
