"""Whole-program index tests: symbol table, import graph, call graph,
event reachability, and cross-module shard rules on a fixture package."""

import textwrap

import pytest

from repro.lint.dataflow import collect_program_findings
from repro.lint.program import build_program
from repro.lint.runner import lint_paths


def write(root, relpath, source):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


@pytest.fixture()
def fixture_pkg(tmp_path):
    root = tmp_path / "pkg"
    write(root, "__init__.py", "")
    write(root, "sim/__init__.py", "")
    write(
        root,
        "sim/engine.py",
        '''\
        # shard: module=shard-local
        """Fixture scheduler."""


        class EventScheduler:
            def __init__(self):
                self.now = 0.0

            def schedule(self, delay, fn, *args):
                fn(*args)
        ''',
    )
    write(root, "overlay/__init__.py", "")
    write(
        root,
        "overlay/proto.py",
        '''\
        # shard: module=shard-local
        """Fixture protocol."""

        from pkg.sim.engine import EventScheduler

        CACHE = {}  # shard: shared-mutable


        def helper(x):
            CACHE[x] = 1


        def handler(x):
            helper(x)


        def run(sched):
            sched.schedule(1.0, handler, 3)


        def seed_streams(streams):
            probe = streams.stream("overlay.probe")
            return probe
        ''',
    )
    return root


class TestProgramIndex:
    def test_symbol_table(self, fixture_pkg):
        index = build_program(str(fixture_pkg))
        assert set(index.modules) == {
            "pkg",
            "pkg.sim",
            "pkg.sim.engine",
            "pkg.overlay",
            "pkg.overlay.proto",
        }
        proto = index.modules["pkg.overlay.proto"]
        assert set(proto.functions) == {"helper", "handler", "run", "seed_streams"}
        cache = proto.module_globals["CACHE"]
        assert cache.shard_class == "shared-mutable"
        assert cache.kind == "mutable"
        engine = index.modules["pkg.sim.engine"]
        assert set(engine.classes) == {"EventScheduler"}
        assert set(engine.classes["EventScheduler"].methods) == {
            "__init__",
            "schedule",
        }

    def test_import_graph(self, fixture_pkg):
        index = build_program(str(fixture_pkg))
        graph = index.import_graph()
        assert graph["pkg.overlay.proto"] == ("pkg.sim.engine",)
        assert graph["pkg.sim.engine"] == ()

    def test_call_graph_and_event_reachability(self, fixture_pkg):
        index = build_program(str(fixture_pkg))
        assert index.call_graph["pkg.overlay.proto:handler"] == (
            "pkg.overlay.proto:helper",
        )
        # handler is registered via sched.schedule(delay, handler, ...)
        assert "pkg.overlay.proto:handler" in index.event_roots
        # ... and its transitive callee is event-reachable.
        assert "pkg.overlay.proto:helper" in index.event_reachable

    def test_stream_sites(self, fixture_pkg):
        index = build_program(str(fixture_pkg))
        sites = index.all_stream_sites()
        assert [(s.name, s.qualname, s.method) for s in sites] == [
            ("overlay.probe", "pkg.overlay.proto:seed_streams", "stream")
        ]

    def test_index_is_deterministic(self, fixture_pkg):
        first = build_program(str(fixture_pkg))
        second = build_program(str(fixture_pkg))
        assert first.stats() == second.stats()
        assert first.call_graph == second.call_graph
        assert first.event_roots == second.event_roots
        assert first.import_graph() == second.import_graph()

    def test_syntax_error_files_are_skipped(self, fixture_pkg):
        write(fixture_pkg, "overlay/broken.py", "def f(:\n")
        index = build_program(str(fixture_pkg))
        assert "pkg.overlay.broken" not in index.modules
        assert "pkg.overlay.proto" in index.modules


class TestShardProgramRules:
    def test_event_reachable_mutation_of_shared_mutable_flagged(
        self, fixture_pkg
    ):
        index = build_program(str(fixture_pkg))
        findings = collect_program_findings(index)
        rules = {f.rule for f in findings}
        assert "shard-event-mutation" in rules
        [finding] = [f for f in findings if f.rule == "shard-event-mutation"]
        assert "CACHE" in finding.message
        assert finding.severity == "high"

    def test_mutation_outside_event_code_allowed(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(root, "sim/__init__.py", "")
        write(
            root,
            "sim/setup.py",
            """\
            # shard: module=shard-local
            CACHE = {}  # shard: shared-mutable


            def warm(key):
                CACHE[key] = 1
            """,
        )
        index = build_program(str(root))
        rules = {f.rule for f in collect_program_findings(index)}
        assert "shard-event-mutation" not in rules

    def test_foreign_mutation_of_shard_local_flagged(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(root, "sim/__init__.py", "")
        write(
            root,
            "sim/state.py",
            """\
            # shard: module=shard-local
            TABLE = {}  # shard: shard-local
            """,
        )
        write(
            root,
            "sim/other.py",
            """\
            # shard: module=shard-local
            from pkg.sim.state import TABLE


            def poke():
                TABLE["x"] = 1
            """,
        )
        index = build_program(str(root))
        findings = collect_program_findings(index)
        rules = {f.rule for f in findings}
        assert "shard-local-foreign-mutation" in rules

    def test_substream_aliasing_flagged(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(
            root,
            "phases.py",
            """\
            def phase_a(streams):
                return streams.stream("arrivals")


            def phase_b(streams):
                return streams.stream("arrivals")
            """,
        )
        index = build_program(str(root))
        findings = [
            f
            for f in collect_program_findings(index)
            if f.rule == "rng-substream-aliasing"
        ]
        assert len(findings) == 2  # one per aliasing site
        assert "arrivals" in findings[0].message

    def test_single_site_substream_allowed(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(
            root,
            "phases.py",
            """\
            def phase_a(streams):
                return streams.stream("arrivals")


            def phase_b(streams):
                return streams.stream("departures")
            """,
        )
        index = build_program(str(root))
        rules = {f.rule for f in collect_program_findings(index)}
        assert "rng-substream-aliasing" not in rules

    def test_faults_namespace_ownership(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(root, "faults/__init__.py", "")
        write(
            root,
            "faults/inject.py",
            """\
            def streams_for(streams):
                return streams.stream("overlay.crash")
            """,
        )
        write(
            root,
            "workload.py",
            """\
            def arrivals(streams):
                return streams.stream("faults.sneaky")
            """,
        )
        index = build_program(str(root))
        findings = [
            f
            for f in collect_program_findings(index)
            if f.rule == "rng-foreign-substream"
        ]
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "overlay.crash" in messages  # faults module w/o faults. prefix
        assert "faults.sneaky" in messages  # foreign module using faults.*

    def test_obs_modules_must_not_own_substreams(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(root, "obs/__init__.py", "")
        write(
            root,
            "obs/tracer.py",
            """\
            def attach(streams):
                return streams.stream("obs.sampling")
            """,
        )
        index = build_program(str(root))
        findings = [
            f
            for f in collect_program_findings(index)
            if f.rule == "rng-foreign-substream"
        ]
        assert len(findings) == 1
        assert "observability" in findings[0].message


class TestRunnerIntegration:
    def test_lint_paths_includes_program_findings(self, fixture_pkg):
        report = lint_paths([str(fixture_pkg)])
        rules = {f.rule for f in report.findings}
        assert "shard-event-mutation" in rules
        assert report.program_stats is not None
        assert report.program_stats["modules"] == 5

    def test_program_finding_suppressible_per_line(self, tmp_path):
        root = tmp_path / "pkg"
        write(root, "__init__.py", "")
        write(
            root,
            "phases.py",
            """\
            def phase_a(streams):
                return streams.stream("arrivals")  # lint: disable=rng-substream-aliasing


            def phase_b(streams):
                return streams.stream("arrivals")  # lint: disable=rng-substream-aliasing
            """,
        )
        report = lint_paths([str(root)])
        assert "rng-substream-aliasing" not in {f.rule for f in report.findings}
        assert report.suppressed == 2
