"""Unit tests for the experiment configuration (Table I)."""

import pytest

from repro.experiments.config import (
    SimulationConfig,
    planetlab_environment,
    simulator_environment,
)


class TestSimulationConfig:
    def test_default_valid(self):
        SimulationConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_nodes=1),
            dict(chunks_per_video=0),
            dict(video_bitrate_bps=0),
            dict(startup_buffer_s=0),
            dict(peer_upload_min_bps=0),
            dict(peer_upload_min_bps=5e6, peer_upload_max_bps=1e6),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_nodes_cannot_exceed_trace_population(self):
        from repro.trace.synthesizer import TraceConfig

        with pytest.raises(ValueError):
            SimulationConfig(
                num_nodes=500,
                trace=TraceConfig(num_users=100, num_channels=10, num_videos=100),
            )

    def test_server_bandwidth_default_ratio(self):
        # Table I ratio: 500 Mbps for 10,000 nodes = 50 kbps per node.
        config = SimulationConfig(num_nodes=1000)
        assert config.effective_server_bandwidth_bps == pytest.approx(50e6)

    def test_server_bandwidth_explicit_override(self):
        config = SimulationConfig(server_bandwidth_bps=123.0)
        assert config.effective_server_bandwidth_bps == 123.0

    def test_video_bits(self):
        config = SimulationConfig()
        assert config.video_bits(100.0) == pytest.approx(32_000_000.0)

    def test_startup_buffer_bits(self):
        config = SimulationConfig(startup_buffer_s=2.0)
        assert config.startup_buffer_bits() == pytest.approx(640_000.0)

    def test_paper_scale_matches_table1(self):
        config = SimulationConfig.paper_scale()
        assert config.num_nodes == 10000
        assert config.trace.num_channels == 545
        assert config.sessions_per_user == 250
        assert config.effective_server_bandwidth_bps == pytest.approx(500e6)
        assert config.inner_links == 5
        assert config.inter_links == 10
        assert config.ttl == 2

    def test_planetlab_scale_matches_paper(self):
        config = SimulationConfig.planetlab_scale()
        assert config.num_nodes == 250
        assert config.trace.num_categories == 6
        assert config.trace.num_channels == 60
        assert config.trace.num_videos == 2400
        assert config.sessions_per_user == 50
        assert config.mean_off_time_s == pytest.approx(120.0)

    def test_scaled_sessions_copy(self):
        config = SimulationConfig.default_scale()
        shorter = config.scaled_sessions(3)
        assert shorter.sessions_per_user == 3
        assert config.sessions_per_user != 3  # original untouched
        assert shorter.num_nodes == config.num_nodes


class TestEnvironments:
    def test_simulator_environment(self, rng):
        env = simulator_environment()
        assert env.name == "peersim"
        assert env.peer_failure_prob == 0.0
        assert env.latency_factory(rng).sample(1, 2) > 0

    def test_planetlab_environment(self, rng):
        env = planetlab_environment()
        assert env.name == "planetlab"
        assert env.peer_failure_prob > 0
        assert env.latency_factory(rng).sample(1, 2) > 0

    def test_bounded_environments_have_positive_lookahead(self, rng):
        # The bounded-jitter variants exist to give conservative shard
        # windows a sound positive lookahead (docs/scaling.md).
        from repro.experiments.config import ENVIRONMENT_FACTORIES

        for name in ("peersim-bounded", "planetlab-bounded"):
            env = ENVIRONMENT_FACTORIES[name]()
            assert env.name == name
            assert env.latency_factory(rng).min_one_way_s() > 0

    def test_unbounded_environments_have_zero_lookahead(self, rng):
        for factory in (simulator_environment, planetlab_environment):
            assert factory().latency_factory(rng).min_one_way_s() == 0.0
